package accum

import (
	"fmt"
	"math/rand"
	"testing"
)

// Ablation benchmarks for the accumulator design choices DESIGN.md calls
// out: probing scheme, chunk width, table load factor, and reset discipline.

func benchKeys(n int, span int32) []int32 {
	rng := rand.New(rand.NewSource(99))
	keys := make([]int32, n)
	for i := range keys {
		keys[i] = int32(rng.Int31n(span))
	}
	return keys
}

// BenchmarkAblationHashing compares probe behaviour at increasing load
// factors — the cost model behind the paper's collision factor c (Eq. 2).
func BenchmarkAblationHashing(b *testing.B) {
	keys := benchKeys(4096, 1<<20)
	for _, load := range []struct {
		name  string
		bound int64
	}{
		{"load~0.12", 16384}, // capacity 32768, ~4090 distinct keys
		{"load~0.25", 8000},  // capacity 16384
		{"load~1.0", 4000},   // capacity 4096: near-full, worst case
	} {
		b.Run(load.name, func(b *testing.B) {
			h := NewHashTable(load.bound)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Reset()
				for _, k := range keys {
					plusAcc(h, k, 1)
				}
			}
			b.ReportMetric(float64(h.Probes())/float64(h.Lookups()), "probes/op")
		})
	}
}

// BenchmarkAblationChunkWidth sweeps the HashVector chunk width (the
// emulated vector-register width: 8 = AVX2 on Haswell, 16 = AVX-512 on KNL).
func BenchmarkAblationChunkWidth(b *testing.B) {
	keys := benchKeys(4096, 8192)
	for _, w := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) {
			h := NewHashVecTableWidth(8192, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Reset()
				for _, k := range keys {
					plusAcc(h, k, 1)
				}
			}
		})
	}
}

// BenchmarkAblationAccumulators races the four accumulator families on the
// same key stream — the per-operation cost ranking that drives the paper's
// algorithm ranking.
func BenchmarkAblationAccumulators(b *testing.B) {
	keys := benchKeys(8192, 4096)
	run := func(name string, reset func(), acc func(k int32)) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reset()
				for _, k := range keys {
					acc(k)
				}
			}
		})
	}
	h := NewHashTable(8192)
	run("hash", h.Reset, func(k int32) { plusAcc(h, k, 1) })
	hv := NewHashVecTable(8192)
	run("hashvec", hv.Reset, func(k int32) { plusAcc(hv, k, 1) })
	s := NewSPA(4096)
	run("spa", s.Reset, func(k int32) { plusAcc(s, k, 1) })
	tl := NewTwoLevelHash(0)
	run("twolevel", tl.Reset, func(k int32) { plusAcc(tl, k, 1) })
	m := map[int32]float64{}
	run("gomap", func() { clear(m) }, func(k int32) { m[k] += 1 })
}

// BenchmarkAblationPool contrasts the paper's reuse discipline (allocate
// once, Reset per row) with allocating a fresh table per row.
func BenchmarkAblationPool(b *testing.B) {
	keys := benchKeys(256, 1024)
	b.Run("reuse+reset", func(b *testing.B) {
		h := NewHashTable(1024)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Reset()
			for _, k := range keys {
				plusAcc(h, k, 1)
			}
		}
	})
	b.Run("alloc-per-row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := NewHashTable(1024)
			for _, k := range keys {
				plusAcc(h, k, 1)
			}
		}
	})
}

// BenchmarkSortPairs measures the per-row sorting cost the unsorted mode
// skips.
func BenchmarkSortPairs(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := benchKeys(n, 1<<30)
			cols := make([]int32, n)
			vals := make([]float64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(cols, src)
				sortPairs(cols, vals)
			}
		})
	}
}
