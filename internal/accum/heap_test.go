package accum

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMergeHeapBasicOrdering(t *testing.T) {
	h := NewMergeHeap(8)
	for _, c := range []int32{5, 1, 9, 3, 7} {
		h.Push(c, 1, 0, 1)
	}
	if !h.CheckInvariant() {
		t.Fatal("heap invariant broken after pushes")
	}
	var got []int32
	for h.Len() > 0 {
		c, _, _ := h.Min()
		got = append(got, c)
		h.PopMin()
	}
	want := []int32{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestMergeHeapKWayMerge(t *testing.T) {
	// Merge 3 sorted "rows" and verify global sorted order with the real
	// Advance/Pop protocol the SpGEMM driver uses.
	bcols := []int32{1, 4, 8 /* row1 */, 2, 4, 6 /* row2 */, 0, 9}
	rows := [][2]int64{{0, 3}, {3, 6}, {6, 8}}
	h := NewMergeHeap(3)
	for _, r := range rows {
		h.Push(bcols[r[0]], 1, r[0], r[1])
	}
	var got []int32
	for h.Len() > 0 {
		c, _, pos := h.Min()
		got = append(got, c)
		_, end := h.MinPosEnd()
		if pos+1 < end {
			h.AdvanceMin(bcols[pos+1])
		} else {
			h.PopMin()
		}
		if !h.CheckInvariant() {
			t.Fatal("heap invariant broken mid-merge")
		}
	}
	want := []int32{0, 1, 2, 4, 4, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestMergeHeapReset(t *testing.T) {
	h := NewMergeHeap(4)
	h.Push(1, 1, 0, 1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len = %d after Reset", h.Len())
	}
	h.Push(2, 1, 0, 1)
	if c, _, _ := h.Min(); c != 2 {
		t.Fatal("heap unusable after Reset")
	}
}

// Property: merging random sorted sequences yields the sorted multiset union.
func TestMergeHeapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		var bcols []int32
		var rows [][2]int64
		var all []int32
		for r := 0; r < k; r++ {
			n := rng.Intn(10)
			start := int64(len(bcols))
			row := make([]int32, n)
			for i := range row {
				row[i] = int32(rng.Intn(50))
			}
			sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
			bcols = append(bcols, row...)
			all = append(all, row...)
			if n > 0 {
				rows = append(rows, [2]int64{start, start + int64(n)})
			}
		}
		h := NewMergeHeap(int64(k))
		for _, r := range rows {
			h.Push(bcols[r[0]], 1, r[0], r[1])
		}
		var got []int32
		for h.Len() > 0 {
			c, _, pos := h.Min()
			got = append(got, c)
			_, end := h.MinPosEnd()
			if pos+1 < end {
				h.AdvanceMin(bcols[pos+1])
			} else {
				h.PopMin()
			}
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		if len(got) != len(all) {
			return false
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSPAMatchesMapReference(t *testing.T) {
	s := NewSPA(300)
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		s.Reset()
		ref := map[int32]float64{}
		for op := 0; op < 1000; op++ {
			k := int32(rng.Intn(300))
			v := rng.Float64()
			plusAcc(s, k, v)
			ref[k] += v
		}
		if s.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
		}
		cols := make([]int32, s.Len())
		vals := make([]float64, s.Len())
		s.ExtractSorted(cols, vals)
		for i, c := range cols {
			if diff := vals[i] - ref[c]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("key %d: %v want %v", c, vals[i], ref[c])
			}
		}
		if !sort.SliceIsSorted(cols, func(a, b int) bool { return cols[a] < cols[b] }) {
			t.Fatal("SPA sorted extraction not sorted")
		}
	}
}

func TestSPAResetIsO1AndCorrect(t *testing.T) {
	s := NewSPA(100)
	plusAcc(s, 5, 1)
	s.Reset()
	if _, ok := s.Lookup(5); ok {
		t.Fatal("stale entry after Reset")
	}
	if s.Len() != 0 {
		t.Fatal("Len after Reset")
	}
	// Generation stamps must keep rows independent across many resets.
	for row := 0; row < 1000; row++ {
		plusAcc(s, int32(row%100), 1)
		if s.Len() != 1 {
			t.Fatalf("row %d: Len = %d", row, s.Len())
		}
		s.Reset()
	}
}

func TestSPAGenerationWraparound(t *testing.T) {
	s := NewSPA(10)
	plusAcc(s, 3, 7)
	// Force the generation counter to the wrap point.
	s.gen = ^uint32(0)
	s.Reset() // wraps to 1 after clearing stamps
	if _, ok := s.Lookup(3); ok {
		t.Fatal("entry survived generation wraparound")
	}
	plusAcc(s, 4, 1)
	if v, ok := s.Lookup(4); !ok || v != 1 {
		t.Fatal("SPA broken after wraparound")
	}
}

func TestSPASymbolic(t *testing.T) {
	s := NewSPA(50)
	if !s.InsertSymbolic(7) {
		t.Fatal("first insert should be new")
	}
	if s.InsertSymbolic(7) {
		t.Fatal("second insert should not be new")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSPAReserve(t *testing.T) {
	s := NewSPA(10)
	s.Reserve(1000)
	plusAcc(s, 999, 2)
	if v, ok := s.Lookup(999); !ok || v != 2 {
		t.Fatal("Reserve did not grow")
	}
	// Shrinking request is a no-op.
	s.Reserve(5)
	if v, ok := s.Lookup(999); !ok || v != 2 {
		t.Fatal("Reserve(smaller) lost data")
	}
}

func TestSPAUpsertNonPlusSemiring(t *testing.T) {
	s := NewSPA(10)
	minAcc := func(key int32, v float64) {
		p, fresh := s.Upsert(key)
		if fresh || v < *p {
			*p = v
		}
	}
	minAcc(2, 9)
	minAcc(2, 4)
	minAcc(2, 6)
	if v, _ := s.Lookup(2); v != 4 {
		t.Fatalf("min = %v", v)
	}
}
