package accum

import (
	"slices"

	"repro/internal/semiring"
)

// SPAG is Gilbert/Moler/Schreiber's sparse accumulator: a dense value array
// indexed directly by column, a dense occupancy mark, and a list of occupied
// columns. Lookup and insert are a single random access — O(1) with no
// collisions ever — at the cost of O(n) space per thread, which is the
// trade-off the paper's Section 4.2.3 cites against hash and heap.
//
// Occupancy uses generation stamps so a per-row reset is O(1): bumping the
// generation invalidates all marks at once. Only the index list is walked
// during extraction.
type SPAG[V semiring.Value] struct {
	vals  []V
	stamp []uint32
	gen   uint32
	idx   []int32 // occupied columns in insertion order
}

// SPA is the float64 instantiation.
type SPA = SPAG[float64]

// NewSPA returns a float64 SPA over a column space of size ncols.
func NewSPA(ncols int) *SPA { return NewSPAG[float64](ncols) }

// NewSPAG returns a SPA over V with a column space of size ncols.
func NewSPAG[V semiring.Value](ncols int) *SPAG[V] {
	return &SPAG[V]{
		vals:  make([]V, ncols),
		stamp: make([]uint32, ncols),
		gen:   1,
		idx:   make([]int32, 0, 256),
	}
}

// Reserve grows the dense arrays to cover ncols columns (no-op if already
// large enough).
func (s *SPAG[V]) Reserve(ncols int) {
	if len(s.vals) < ncols {
		s.vals = make([]V, ncols)
		s.stamp = make([]uint32, ncols)
		s.gen = 1
	}
}

// Reset prepares for a new row in O(1) (amortized: a full stamp clear every
// 2^32 rows when the generation counter wraps).
//
//spgemm:hotpath
func (s *SPAG[V]) Reset() {
	s.idx = s.idx[:0]
	s.gen++
	if s.gen == 0 { // wrapped: all stamps are stale-but-matching; clear them
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
}

// Len returns the number of distinct columns accumulated this row.
func (s *SPAG[V]) Len() int { return len(s.idx) }

// InsertSymbolic marks col occupied, reporting whether it was new.
//
//spgemm:hotpath
func (s *SPAG[V]) InsertSymbolic(col int32) bool {
	if s.stamp[col] == s.gen {
		return false
	}
	s.stamp[col] = s.gen
	s.idx = append(s.idx, col)
	return true
}

// Upsert returns a pointer to col's value slot and whether the column is new
// this row (fresh slots hold stale contents; the caller stores the first
// product).
//
//spgemm:hotpath
func (s *SPAG[V]) Upsert(col int32) (*V, bool) {
	if s.stamp[col] == s.gen {
		return &s.vals[col], false
	}
	s.stamp[col] = s.gen
	s.idx = append(s.idx, col)
	return &s.vals[col], true
}

// Lookup returns the value for col and whether it is occupied this row.
//
//spgemm:hotpath
func (s *SPAG[V]) Lookup(col int32) (V, bool) {
	if s.stamp[col] == s.gen {
		return s.vals[col], true
	}
	var zero V
	return zero, false
}

// ExtractUnsorted writes the (col, value) pairs in insertion order.
//
//spgemm:hotpath
func (s *SPAG[V]) ExtractUnsorted(cols []int32, vals []V) int {
	idx := s.idx
	n := len(idx)
	// Reslicing the destinations to n drops the per-entry bounds checks on
	// cols/vals; s.vals[c] stays checked (c is a caller-supplied column id
	// with no compile-time bound) and is budgeted by the BCE gate.
	cols = cols[:n]
	vals = vals[:n]
	for i, c := range idx {
		cols[i] = c
		vals[i] = s.vals[c]
	}
	return n
}

// ExtractSorted writes the pairs in increasing column order.
//
//spgemm:hotpath
func (s *SPAG[V]) ExtractSorted(cols []int32, vals []V) int {
	n := len(s.idx)
	cols = cols[:n]
	vals = vals[:n]
	copy(cols, s.idx)
	slices.Sort(cols)
	for i, col := range cols {
		vals[i] = s.vals[col]
	}
	return n
}

// ExtractUnsortedBias is ExtractUnsorted with bias added to every emitted
// column id — the tile-local → global column translation of the tiled
// kernel's stitch pass, fused into the extraction so no temp copy exists.
//
//spgemm:hotpath
func (s *SPAG[V]) ExtractUnsortedBias(cols []int32, vals []V, bias int32) int {
	idx := s.idx
	n := len(idx)
	cols = cols[:n]
	vals = vals[:n]
	for i, c := range idx {
		cols[i] = c + bias
		vals[i] = s.vals[c]
	}
	return n
}

// ExtractSortedBias is ExtractSorted with bias added to every emitted column
// id. Because a tile covers a contiguous column range, sorting the local ids
// and biasing afterwards yields globally sorted output for the tile's slice
// of the row.
//
//spgemm:hotpath
func (s *SPAG[V]) ExtractSortedBias(cols []int32, vals []V, bias int32) int {
	n := len(s.idx)
	cols = cols[:n]
	vals = vals[:n]
	copy(cols, s.idx)
	slices.Sort(cols)
	for i, col := range cols {
		vals[i] = s.vals[col]
		cols[i] = col + bias
	}
	return n
}
