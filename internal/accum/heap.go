package accum

import "repro/internal/semiring"

// MergeHeapG is the accumulator of Heap SpGEMM (Section 4.2.3): a binary
// min-heap keyed by column index that k-way-merges the nnz(a_i*) scaled rows
// of B contributing to output row i. Space is O(nnz(a_i*)) — the heap holds
// one cursor per contributing row of B — which is the heap algorithm's
// advantage over hash (O(flop)) and SPA (O(n)) accumulators.
type MergeHeapG[V semiring.Value] struct {
	// Parallel arrays beat a slice of structs here: the sift loops touch
	// Col for every comparison but AVal/Pos/End only on swap.
	col  []int32
	aval []V
	pos  []int64
	end  []int64
	// pushes counts cursor pushes across the heap's lifetime (one per
	// non-empty contributing row of B), feeding the per-worker HeapPushes
	// counter of the ExecStats instrumentation.
	pushes int64
}

// MergeHeap is the float64 instantiation.
type MergeHeap = MergeHeapG[float64]

// NewMergeHeap returns a float64 heap with initial capacity for bound cursors.
func NewMergeHeap(bound int64) *MergeHeap { return NewMergeHeapG[float64](bound) }

// NewMergeHeapG returns a heap over V with initial capacity for bound cursors.
func NewMergeHeapG[V semiring.Value](bound int64) *MergeHeapG[V] {
	return &MergeHeapG[V]{
		col:  make([]int32, 0, bound),
		aval: make([]V, 0, bound),
		pos:  make([]int64, 0, bound),
		end:  make([]int64, 0, bound),
	}
}

// Len returns the number of live cursors.
func (h *MergeHeapG[V]) Len() int { return len(h.col) }

// Reset empties the heap, keeping capacity.
//
//spgemm:hotpath
func (h *MergeHeapG[V]) Reset() {
	h.col = h.col[:0]
	h.aval = h.aval[:0]
	h.pos = h.pos[:0]
	h.end = h.end[:0]
}

// Pushes returns the cumulative number of Push calls.
//
//spgemm:hotpath
func (h *MergeHeapG[V]) Pushes() int64 { return h.pushes }

// Push adds a cursor: the merge source currently at column col with scale
// aval, reading B storage positions [pos, end).
func (h *MergeHeapG[V]) Push(col int32, aval V, pos, end int64) {
	h.pushes++
	h.col = append(h.col, col)
	h.aval = append(h.aval, aval)
	h.pos = append(h.pos, pos)
	h.end = append(h.end, end)
	h.siftUp(len(h.col) - 1)
}

// Min returns the minimum column and its cursor's fields. The heap must be
// non-empty.
//
//spgemm:hotpath
func (h *MergeHeapG[V]) Min() (col int32, aval V, pos int64) {
	return h.col[0], h.aval[0], h.pos[0]
}

// AdvanceMin moves the minimum cursor to its next B entry (column nextCol)
// and restores the heap. The caller has consumed the entry at the previous
// position.
//
//spgemm:hotpath
func (h *MergeHeapG[V]) AdvanceMin(nextCol int32) {
	h.col[0] = nextCol
	h.pos[0]++
	h.siftDown(0)
}

// MinPosEnd returns the minimum cursor's position and end, letting the
// driver decide between AdvanceMin and PopMin.
//
//spgemm:hotpath
func (h *MergeHeapG[V]) MinPosEnd() (pos, end int64) { return h.pos[0], h.end[0] }

// PopMin removes the minimum cursor (its B row is exhausted).
//
//spgemm:hotpath
func (h *MergeHeapG[V]) PopMin() {
	last := len(h.col) - 1
	h.swap(0, last)
	h.col = h.col[:last]
	h.aval = h.aval[:last]
	h.pos = h.pos[:last]
	h.end = h.end[:last]
	if last > 0 {
		h.siftDown(0)
	}
}

//spgemm:hotpath
func (h *MergeHeapG[V]) swap(i, j int) {
	h.col[i], h.col[j] = h.col[j], h.col[i]
	h.aval[i], h.aval[j] = h.aval[j], h.aval[i]
	h.pos[i], h.pos[j] = h.pos[j], h.pos[i]
	h.end[i], h.end[j] = h.end[j], h.end[i]
}

//spgemm:hotpath
func (h *MergeHeapG[V]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.col[parent] <= h.col[i] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

//spgemm:hotpath
func (h *MergeHeapG[V]) siftDown(i int) {
	n := len(h.col)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && h.col[r] < h.col[l] {
			small = r
		}
		if h.col[i] <= h.col[small] {
			return
		}
		h.swap(i, small)
		i = small
	}
}

// CheckInvariant verifies the heap property; used by tests.
func (h *MergeHeapG[V]) CheckInvariant() bool {
	n := len(h.col)
	for i := 1; i < n; i++ {
		if h.col[(i-1)/2] > h.col[i] {
			return false
		}
	}
	return true
}

// ResetCounters zeroes the cumulative push counter without touching the
// heap's capacity. spgemm.Context calls it when reusing a cached heap so
// per-call ExecStats keep the semantics of a fresh heap.
func (h *MergeHeapG[V]) ResetCounters() { h.pushes = 0 }
