package accum

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 1}, {1, 2}, {2, 4}, {3, 4}, {4, 8}, {7, 8}, {8, 16}, {1000, 1024}, {1024, 2048},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Fatalf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// accumulator is the interface shared by the hash-family accumulators, used
// to run the same conformance tests over all of them.
type accumulator interface {
	Reset()
	Len() int
	InsertSymbolic(key int32) bool
	Upsert(key int32) (*float64, bool)
	Lookup(key int32) (float64, bool)
	ExtractUnsorted(cols []int32, vals []float64) int
	ExtractSorted(cols []int32, vals []float64) int
}

func accumulators(bound int64) map[string]accumulator {
	return map[string]accumulator{
		"hash":     NewHashTable(bound),
		"hashvec":  NewHashVecTable(bound),
		"twolevel": NewTwoLevelHash(64), // tiny L1 to force overflow
	}
}

func TestAccumulatorsMatchMapReference(t *testing.T) {
	for name, acc := range accumulators(4096) {
		rng := rand.New(rand.NewSource(51))
		for trial := 0; trial < 20; trial++ {
			acc.Reset()
			ref := map[int32]float64{}
			nops := rng.Intn(2000)
			for op := 0; op < nops; op++ {
				key := int32(rng.Intn(500))
				v := rng.Float64()*2 - 1
				plusAcc(acc, key, v)
				ref[key] += v
			}
			if acc.Len() != len(ref) {
				t.Fatalf("%s trial %d: Len=%d want %d", name, trial, acc.Len(), len(ref))
			}
			cols := make([]int32, acc.Len())
			vals := make([]float64, acc.Len())
			n := acc.ExtractSorted(cols, vals)
			if n != len(ref) {
				t.Fatalf("%s: extracted %d want %d", name, n, len(ref))
			}
			if !sort.SliceIsSorted(cols, func(a, b int) bool { return cols[a] < cols[b] }) {
				t.Fatalf("%s: ExtractSorted not sorted", name)
			}
			for i, c := range cols {
				want := ref[c]
				if diff := vals[i] - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s: key %d = %v, want %v", name, c, vals[i], want)
				}
			}
		}
	}
}

func TestAccumulatorSymbolicMatchesNumericCount(t *testing.T) {
	for name, acc := range accumulators(4096) {
		rng := rand.New(rand.NewSource(52))
		keys := make([]int32, 300)
		for i := range keys {
			keys[i] = int32(rng.Intn(100))
		}
		acc.Reset()
		distinct := map[int32]bool{}
		for _, k := range keys {
			isNew := acc.InsertSymbolic(k)
			if isNew == distinct[k] {
				t.Fatalf("%s: InsertSymbolic(%d) new=%v but seen=%v", name, k, isNew, distinct[k])
			}
			distinct[k] = true
		}
		if acc.Len() != len(distinct) {
			t.Fatalf("%s: Len=%d want %d", name, acc.Len(), len(distinct))
		}
	}
}

func TestAccumulatorLookup(t *testing.T) {
	for name, acc := range accumulators(1024) {
		acc.Reset()
		plusAcc(acc, 7, 1.5)
		plusAcc(acc, 7, 2.5)
		if v, ok := acc.Lookup(7); !ok || v != 4 {
			t.Fatalf("%s: Lookup(7) = %v,%v", name, v, ok)
		}
		if _, ok := acc.Lookup(8); ok {
			t.Fatalf("%s: Lookup(8) should miss", name)
		}
	}
}

func TestAccumulatorResetClears(t *testing.T) {
	for name, acc := range accumulators(1024) {
		acc.Reset()
		for k := int32(0); k < 50; k++ {
			plusAcc(acc, k, 1)
		}
		acc.Reset()
		if acc.Len() != 0 {
			t.Fatalf("%s: Len=%d after Reset", name, acc.Len())
		}
		if _, ok := acc.Lookup(10); ok {
			t.Fatalf("%s: stale entry after Reset", name)
		}
		// Table is fully reusable after reset.
		plusAcc(acc, 10, 3)
		if v, ok := acc.Lookup(10); !ok || v != 3 {
			t.Fatalf("%s: reuse after Reset broken", name)
		}
	}
}

func TestHashTableNearFullLoad(t *testing.T) {
	// The paper sizes tables at the flop upper bound, so load factors can
	// approach 1. Fill to capacity-1 and verify correctness (capacity is
	// NextPow2(bound) > bound, guaranteeing an empty slot).
	h := NewHashTable(63) // capacity 64
	for k := int32(0); k < 63; k++ {
		plusAcc(h, k*64, float64(k)) // same slot modulo: worst-case probing
	}
	if h.Len() != 63 {
		t.Fatalf("Len = %d", h.Len())
	}
	for k := int32(0); k < 63; k++ {
		if v, ok := h.Lookup(k * 64); !ok || v != float64(k) {
			t.Fatalf("Lookup(%d) = %v,%v", k*64, v, ok)
		}
	}
	if h.Probes() == 0 {
		t.Fatal("expected collisions at near-full load")
	}
}

func TestHashTableGrow(t *testing.T) {
	h := NewHashTable(15) // capacity 16
	h.SetGrow(true)
	for k := int32(0); k < 1000; k++ {
		plusAcc(h, k, 1)
	}
	if h.Len() != 1000 {
		t.Fatalf("Len = %d", h.Len())
	}
	if h.Cap() < 1000 {
		t.Fatalf("Cap = %d, table did not grow", h.Cap())
	}
	for k := int32(0); k < 1000; k++ {
		if _, ok := h.Lookup(k); !ok {
			t.Fatalf("key %d lost during growth", k)
		}
	}
}

func TestHashTableReserveShrinksAndClears(t *testing.T) {
	h := NewHashTable(1000)
	plusAcc(h, 1, 1)
	h.Reserve(10)
	if h.Len() != 0 {
		t.Fatal("Reserve did not clear")
	}
	if h.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", h.Cap())
	}
}

func TestHashVecWidths(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16} {
		h := NewHashVecTableWidth(100, w)
		ref := map[int32]float64{}
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < 500; i++ {
			k := int32(rng.Intn(90))
			plusAcc(h, k, 1)
			ref[k]++
		}
		if h.Len() != len(ref) {
			t.Fatalf("width %d: Len=%d want %d", w, h.Len(), len(ref))
		}
		for k, want := range ref {
			if v, ok := h.Lookup(k); !ok || v != want {
				t.Fatalf("width %d key %d: %v,%v want %v", w, k, v, ok, want)
			}
		}
	}
}

func TestHashVecBadWidthPanics(t *testing.T) {
	for _, w := range []int{0, 1, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d: expected panic", w)
				}
			}()
			NewHashVecTableWidth(10, w)
		}()
	}
}

func TestTwoLevelOverflowsToL2(t *testing.T) {
	tl := NewTwoLevelHash(16)
	// Insert far more keys than L1 can hold: overflow must engage.
	for k := int32(0); k < 500; k++ {
		plusAcc(tl, k, float64(k))
	}
	if tl.Len() != 500 {
		t.Fatalf("Len = %d", tl.Len())
	}
	if tl.L2Len() == 0 {
		t.Fatal("expected level-2 overflow with tiny level 1")
	}
	for k := int32(0); k < 500; k++ {
		if v, ok := tl.Lookup(k); !ok || v != float64(k) {
			t.Fatalf("Lookup(%d) = %v,%v", k, v, ok)
		}
	}
}

func TestTwoLevelBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-pow2 size")
		}
	}()
	NewTwoLevelHash(100)
}

func TestUpsertNonPlusSemiring(t *testing.T) {
	// The driver applies the ring operation to the Upsert slot; max here
	// stands in for any non-plus additive operation.
	h := NewHashTable(64)
	maxAcc(h, 3, 5)
	maxAcc(h, 3, 2)
	maxAcc(h, 3, 9)
	if v, _ := h.Lookup(3); v != 9 {
		t.Fatalf("hash max = %v", v)
	}
	hv := NewHashVecTable(64)
	maxAcc(hv, 3, 5)
	maxAcc(hv, 3, 9)
	maxAcc(hv, 3, 2)
	if v, _ := hv.Lookup(3); v != 9 {
		t.Fatalf("hashvec max = %v", v)
	}
}

// Property: for any operation sequence, hash and hashvec extract identical
// sorted contents.
func TestHashFamiliesAgreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHashTable(512)
		hv := NewHashVecTable(512)
		tl := NewTwoLevelHash(32)
		n := rng.Intn(400)
		for i := 0; i < n; i++ {
			k := int32(rng.Intn(200))
			v := float64(rng.Intn(10))
			plusAcc(h, k, v)
			plusAcc(hv, k, v)
			plusAcc(tl, k, v)
		}
		if h.Len() != hv.Len() || h.Len() != tl.Len() {
			return false
		}
		m := h.Len()
		c1, v1 := make([]int32, m), make([]float64, m)
		c2, v2 := make([]int32, m), make([]float64, m)
		c3, v3 := make([]int32, m), make([]float64, m)
		h.ExtractSorted(c1, v1)
		hv.ExtractSorted(c2, v2)
		tl.ExtractSorted(c3, v3)
		for i := 0; i < m; i++ {
			if c1[i] != c2[i] || c1[i] != c3[i] || v1[i] != v2[i] || v1[i] != v3[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeCountersAdvance(t *testing.T) {
	h := NewHashTable(15) // capacity 16: collisions guaranteed below
	for k := int32(0); k < 15; k++ {
		h.InsertSymbolic(k * 16)
	}
	if h.Lookups() != 15 {
		t.Fatalf("Lookups = %d", h.Lookups())
	}
	if h.Probes() == 0 {
		t.Fatal("expected probes > 0")
	}
}
