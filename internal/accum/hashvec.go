package accum

import "repro/internal/semiring"

// HashVecTableG is the accumulator of HashVector SpGEMM (Section 4.2.2). The
// table is divided into fixed-width chunks; the hash selects a chunk, and the
// whole chunk is scanned at once — on Xeon/Xeon Phi with AVX2/AVX-512
// compare instructions, here with a fixed-bound loop the compiler unrolls.
// New keys are pushed into a chunk from the front, so the first empty slot
// terminates the scan. When a chunk is full, probing moves to the next chunk
// (linear probing at chunk granularity).
//
// Go has no vector intrinsics, so the single-instruction 8-way compare is
// emulated; the algorithmic property — one probe step tests ChunkWidth keys,
// reducing probe counts under heavy collision at a slightly higher constant
// per step — is preserved, which is what the Hash-vs-HashVector crossover in
// the paper's Figures 11-14 depends on.
type HashVecTableG[V semiring.Value] struct {
	keys      []int32
	vals      []V
	used      []int32 // occupied slot indices
	chunkMask uint32
	width     uint32
	shift     uint32 // log2(width)
	probes    int64  // chunk-granularity probe steps beyond the first
	lookups   int64
}

// HashVecTable is the float64 instantiation.
type HashVecTable = HashVecTableG[float64]

// DefaultChunkWidth matches a 256-bit vector register holding 8 int32 keys
// (the paper's Haswell configuration; KNL's AVX-512 doubles it to 16).
const DefaultChunkWidth = 8

// NewHashVecTable returns a float64 chunked table sized for bound entries
// with the default chunk width.
func NewHashVecTable(bound int64) *HashVecTable {
	return NewHashVecTableWidth(bound, DefaultChunkWidth)
}

// NewHashVecTableG returns a chunked table over V sized for bound entries
// with the default chunk width.
func NewHashVecTableG[V semiring.Value](bound int64) *HashVecTableG[V] {
	return NewHashVecTableWidthG[V](bound, DefaultChunkWidth)
}

// NewHashVecTableWidth returns a float64 chunked table with the given chunk
// width (a power of two ≥ 2); used by the chunk-width ablation benchmark.
func NewHashVecTableWidth(bound int64, width int) *HashVecTable {
	return NewHashVecTableWidthG[float64](bound, width)
}

// NewHashVecTableWidthG returns a chunked table over V with the given chunk
// width (a power of two ≥ 2).
func NewHashVecTableWidthG[V semiring.Value](bound int64, width int) *HashVecTableG[V] {
	if width < 2 || width&(width-1) != 0 {
		panic("accum: chunk width must be a power of two >= 2")
	}
	h := &HashVecTableG[V]{width: uint32(width)}
	for w := uint32(width); w > 1; w >>= 1 {
		h.shift++
	}
	h.Reserve(bound)
	return h
}

// Reserve re-sizes for bound entries and clears the table.
func (h *HashVecTableG[V]) Reserve(bound int64) {
	chunks := NextPow2((bound + int64(h.width) - 1) / int64(h.width))
	if chunks < 2 {
		chunks = 2
	}
	capacity := chunks * int64(h.width)
	if int64(len(h.keys)) != capacity {
		h.keys = make([]int32, capacity)
		h.vals = make([]V, capacity)
	}
	for i := range h.keys {
		h.keys[i] = emptyKey
	}
	h.used = h.used[:0]
	h.chunkMask = uint32(chunks - 1)
}

// Reset clears the table in O(entries).
//
//spgemm:hotpath
func (h *HashVecTableG[V]) Reset() {
	// Mask the slot index by len(keys)-1 (capacity is a power of two) so
	// the store is provably in bounds; see the BCE notes in hash.go.
	keys := h.keys
	mask := len(keys) - 1
	if mask < 0 {
		return
	}
	for _, s := range h.used {
		keys[int(s)&mask] = emptyKey
	}
	h.used = h.used[:0]
}

// Len returns the number of distinct keys stored.
func (h *HashVecTableG[V]) Len() int { return len(h.used) }

// Cap returns the total slot capacity.
func (h *HashVecTableG[V]) Cap() int { return len(h.keys) }

// Probes returns cumulative chunk probe steps beyond the first.
func (h *HashVecTableG[V]) Probes() int64 { return h.probes }

// Lookups returns the cumulative operation count.
//
//spgemm:hotpath
func (h *HashVecTableG[V]) Lookups() int64 { return h.lookups }

//spgemm:hotpath
func (h *HashVecTableG[V]) chunk(key int32) uint32 {
	return (uint32(key) * hashConst) & h.chunkMask
}

// InsertSymbolic inserts key if absent, reporting whether it was new.
//
//spgemm:hotpath
func (h *HashVecTableG[V]) InsertSymbolic(key int32) bool {
	h.lookups++
	c := h.chunk(key)
	for {
		base := c << h.shift
		chunk := h.keys[base : base+h.width]
		// Emulated vector compare: scan the whole chunk. Keys are pushed
		// from the front, so the first empty slot means "not present".
		for i, k := range chunk {
			if k == key {
				return false
			}
			if k == emptyKey {
				chunk[i] = key
				h.used = append(h.used, int32(base)+int32(i))
				return true
			}
		}
		h.probes++
		c = (c + 1) & h.chunkMask
	}
}

// Upsert returns a pointer to key's value slot and whether the key is new
// (fresh slots hold stale contents; the caller stores the first product).
//
//spgemm:hotpath
func (h *HashVecTableG[V]) Upsert(key int32) (*V, bool) {
	h.lookups++
	c := h.chunk(key)
	for {
		base := c << h.shift
		chunk := h.keys[base : base+h.width]
		for i, k := range chunk {
			if k == key {
				return &h.vals[base+uint32(i)], false
			}
			if k == emptyKey {
				chunk[i] = key
				h.used = append(h.used, int32(base)+int32(i))
				return &h.vals[base+uint32(i)], true
			}
		}
		h.probes++
		c = (c + 1) & h.chunkMask
	}
}

// Lookup returns the value for key and whether it is present.
func (h *HashVecTableG[V]) Lookup(key int32) (V, bool) {
	c := h.chunk(key)
	for {
		base := c << h.shift
		chunk := h.keys[base : base+h.width]
		for i, k := range chunk {
			if k == key {
				return h.vals[base+uint32(i)], true
			}
			if k == emptyKey {
				var zero V
				return zero, false
			}
		}
		c = (c + 1) & h.chunkMask
	}
}

// ExtractUnsorted writes entries in insertion order; returns the count.
//
//spgemm:hotpath
func (h *HashVecTableG[V]) ExtractUnsorted(cols []int32, vals []V) int {
	used := h.used
	n := len(used)
	cols = cols[:n]
	vals = vals[:n]
	keys := h.keys
	mask := len(keys) - 1
	if mask < 0 {
		return 0
	}
	tvals := h.vals[:len(keys)]
	for i, s := range used {
		j := int(s) & mask
		cols[i] = keys[j]
		vals[i] = tvals[j]
	}
	return n
}

// ExtractSorted writes entries in increasing key order; returns the count.
//
//spgemm:hotpath
func (h *HashVecTableG[V]) ExtractSorted(cols []int32, vals []V) int {
	n := h.ExtractUnsorted(cols, vals)
	sortPairs(cols[:n], vals[:n])
	return n
}

// ResetCounters zeroes the cumulative probe/lookup counters without touching
// the table contents or capacity. spgemm.Context calls it when reusing a
// cached table so per-call ExecStats keep the semantics of a fresh table.
func (h *HashVecTableG[V]) ResetCounters() { h.probes, h.lookups = 0, 0 }
