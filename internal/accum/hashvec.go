package accum

// HashVecTable is the accumulator of HashVector SpGEMM (Section 4.2.2). The
// table is divided into fixed-width chunks; the hash selects a chunk, and the
// whole chunk is scanned at once — on Xeon/Xeon Phi with AVX2/AVX-512
// compare instructions, here with a fixed-bound loop the compiler unrolls.
// New keys are pushed into a chunk from the front, so the first empty slot
// terminates the scan. When a chunk is full, probing moves to the next chunk
// (linear probing at chunk granularity).
//
// Go has no vector intrinsics, so the single-instruction 8-way compare is
// emulated; the algorithmic property — one probe step tests ChunkWidth keys,
// reducing probe counts under heavy collision at a slightly higher constant
// per step — is preserved, which is what the Hash-vs-HashVector crossover in
// the paper's Figures 11-14 depends on.
type HashVecTable struct {
	keys      []int32
	vals      []float64
	used      []int32 // occupied slot indices
	chunkMask uint32
	width     uint32
	shift     uint32 // log2(width)
	probes    int64  // chunk-granularity probe steps beyond the first
	lookups   int64
}

// DefaultChunkWidth matches a 256-bit vector register holding 8 int32 keys
// (the paper's Haswell configuration; KNL's AVX-512 doubles it to 16).
const DefaultChunkWidth = 8

// NewHashVecTable returns a chunked table sized for bound entries with the
// default chunk width.
func NewHashVecTable(bound int64) *HashVecTable {
	return NewHashVecTableWidth(bound, DefaultChunkWidth)
}

// NewHashVecTableWidth returns a chunked table with the given chunk width
// (a power of two ≥ 2); used by the chunk-width ablation benchmark.
func NewHashVecTableWidth(bound int64, width int) *HashVecTable {
	if width < 2 || width&(width-1) != 0 {
		panic("accum: chunk width must be a power of two >= 2")
	}
	h := &HashVecTable{width: uint32(width)}
	for w := uint32(width); w > 1; w >>= 1 {
		h.shift++
	}
	h.Reserve(bound)
	return h
}

// Reserve re-sizes for bound entries and clears the table.
func (h *HashVecTable) Reserve(bound int64) {
	chunks := NextPow2((bound + int64(h.width) - 1) / int64(h.width))
	if chunks < 2 {
		chunks = 2
	}
	capacity := chunks * int64(h.width)
	if int64(len(h.keys)) != capacity {
		h.keys = make([]int32, capacity)
		h.vals = make([]float64, capacity)
	}
	for i := range h.keys {
		h.keys[i] = emptyKey
	}
	h.used = h.used[:0]
	h.chunkMask = uint32(chunks - 1)
}

// Reset clears the table in O(entries).
//
//spgemm:hotpath
func (h *HashVecTable) Reset() {
	for _, s := range h.used {
		h.keys[s] = emptyKey
	}
	h.used = h.used[:0]
}

// Len returns the number of distinct keys stored.
func (h *HashVecTable) Len() int { return len(h.used) }

// Cap returns the total slot capacity.
func (h *HashVecTable) Cap() int { return len(h.keys) }

// Probes returns cumulative chunk probe steps beyond the first.
func (h *HashVecTable) Probes() int64 { return h.probes }

// Lookups returns the cumulative operation count.
//
//spgemm:hotpath
func (h *HashVecTable) Lookups() int64 { return h.lookups }

//spgemm:hotpath
func (h *HashVecTable) chunk(key int32) uint32 {
	return (uint32(key) * hashConst) & h.chunkMask
}

// InsertSymbolic inserts key if absent, reporting whether it was new.
//
//spgemm:hotpath
func (h *HashVecTable) InsertSymbolic(key int32) bool {
	h.lookups++
	c := h.chunk(key)
	for {
		base := c << h.shift
		chunk := h.keys[base : base+h.width]
		// Emulated vector compare: scan the whole chunk. Keys are pushed
		// from the front, so the first empty slot means "not present".
		for i, k := range chunk {
			if k == key {
				return false
			}
			if k == emptyKey {
				chunk[i] = key
				h.used = append(h.used, int32(base)+int32(i))
				return true
			}
		}
		h.probes++
		c = (c + 1) & h.chunkMask
	}
}

// Accumulate adds v into key's entry, inserting if absent (plus-times path).
//
//spgemm:hotpath
func (h *HashVecTable) Accumulate(key int32, v float64) {
	h.lookups++
	c := h.chunk(key)
	for {
		base := c << h.shift
		chunk := h.keys[base : base+h.width]
		for i, k := range chunk {
			if k == key {
				h.vals[base+uint32(i)] += v
				return
			}
			if k == emptyKey {
				chunk[i] = key
				h.vals[base+uint32(i)] = v
				h.used = append(h.used, int32(base)+int32(i))
				return
			}
		}
		h.probes++
		c = (c + 1) & h.chunkMask
	}
}

// AccumulateFunc is Accumulate under an arbitrary additive operation.
//
//spgemm:hotpath
func (h *HashVecTable) AccumulateFunc(key int32, v float64, add func(a, b float64) float64) {
	h.lookups++
	c := h.chunk(key)
	for {
		base := c << h.shift
		chunk := h.keys[base : base+h.width]
		for i, k := range chunk {
			if k == key {
				h.vals[base+uint32(i)] = add(h.vals[base+uint32(i)], v)
				return
			}
			if k == emptyKey {
				chunk[i] = key
				h.vals[base+uint32(i)] = v
				h.used = append(h.used, int32(base)+int32(i))
				return
			}
		}
		h.probes++
		c = (c + 1) & h.chunkMask
	}
}

// Lookup returns the value for key and whether it is present.
func (h *HashVecTable) Lookup(key int32) (float64, bool) {
	c := h.chunk(key)
	for {
		base := c << h.shift
		chunk := h.keys[base : base+h.width]
		for i, k := range chunk {
			if k == key {
				return h.vals[base+uint32(i)], true
			}
			if k == emptyKey {
				return 0, false
			}
		}
		c = (c + 1) & h.chunkMask
	}
}

// ExtractUnsorted writes entries in insertion order; returns the count.
//
//spgemm:hotpath
func (h *HashVecTable) ExtractUnsorted(cols []int32, vals []float64) int {
	for i, s := range h.used {
		cols[i] = h.keys[s]
		vals[i] = h.vals[s]
	}
	return len(h.used)
}

// ExtractSorted writes entries in increasing key order; returns the count.
//
//spgemm:hotpath
func (h *HashVecTable) ExtractSorted(cols []int32, vals []float64) int {
	n := h.ExtractUnsorted(cols, vals)
	sortPairs(cols[:n], vals[:n])
	return n
}

// ResetCounters zeroes the cumulative probe/lookup counters without touching
// the table contents or capacity. spgemm.Context calls it when reusing a
// cached table so per-call ExecStats keep the semantics of a fresh table.
func (h *HashVecTable) ResetCounters() { h.probes, h.lookups = 0, 0 }
