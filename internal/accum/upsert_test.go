package accum

// upserter is the value-slot API shared by every accumulator in the package
// (float64 instantiations), used to run the same conformance tests over all
// of them.
type upserter interface {
	Upsert(key int32) (*float64, bool)
}

// plusAcc folds v into key's entry with conventional addition via Upsert —
// the test-side stand-in for the driver-side ring application.
func plusAcc(a upserter, key int32, v float64) {
	p, fresh := a.Upsert(key)
	if fresh {
		*p = v
	} else {
		*p += v
	}
}

// maxAcc folds v into key's entry with max, standing in for a non-plus ring.
func maxAcc(a upserter, key int32, v float64) {
	p, fresh := a.Upsert(key)
	if fresh || v > *p {
		*p = v
	}
}
