package accum

import (
	"sync/atomic"

	"repro/internal/semiring"
)

// TwoLevelHashG models KokkosKernels' kkmem accumulator: a small fixed-size
// first-level hash table sized to fit in cache, with a growable second-level
// table absorbing the overflow. Probing in level 1 is bounded; once a probe
// sequence exceeds the bound the key is delegated to level 2.
//
// Key claims in level 1 go through atomic compare-and-swap, mirroring
// kkmem's thread-team execution model in which several lanes may insert into
// a shared table concurrently. The paper makes exactly this point about its
// own Hash SpGEMM: "Hash SpGEMM on GPU requires some form of mutual
// exclusion ... We were able to remove this overhead in our present Hash
// SpGEMM" (Section 4.2.1) — the portable kkmem retains it, which is one
// reason KokkosKernels trails the specialized Hash kernel in the paper's
// Figures 11–15, and the same gap appears in this reimplementation.
//
// Value updates are plain stores through Upsert's returned pointer: in this
// repository every table is owned by one worker (the kernels are row-
// parallel, never entry-parallel), so the historic CAS loop on float64 bit
// patterns bought nothing and does not generalize to arbitrary V. The key
// CAS is retained to keep the kkmem probe/claim cost model faithful.
type TwoLevelHashG[V semiring.Value] struct {
	l1Keys []int32
	l1Vals []V
	l1Used []int32
	l1Mask uint32
	l2     *HashTableG[V]
	// overflows counts operations delegated to level 2 after an exhausted
	// level-1 probe sequence, feeding the L2Overflows ExecStats counter.
	overflows int64
}

// TwoLevelHash is the float64 instantiation.
type TwoLevelHash = TwoLevelHashG[float64]

// l1ProbeBound is the maximum linear-probe distance in level 1 before
// delegating to level 2.
const l1ProbeBound = 8

// DefaultL1Size is the default level-1 capacity: 4096 slots × 12 bytes sits
// comfortably in a 256 KiB L2 tile, mirroring kkmem's cache-resident intent.
const DefaultL1Size = 4096

// NewTwoLevelHash returns a float64 two-level accumulator with the given
// level-1 capacity (a power of two; 0 selects DefaultL1Size).
func NewTwoLevelHash(l1Size int) *TwoLevelHash { return NewTwoLevelHashG[float64](l1Size) }

// NewTwoLevelHashG returns a two-level accumulator over V with the given
// level-1 capacity (a power of two; 0 selects DefaultL1Size).
func NewTwoLevelHashG[V semiring.Value](l1Size int) *TwoLevelHashG[V] {
	if l1Size == 0 {
		l1Size = DefaultL1Size
	}
	if l1Size < 16 || l1Size&(l1Size-1) != 0 {
		panic("accum: level-1 size must be a power of two >= 16")
	}
	t := &TwoLevelHashG[V]{
		l1Keys: make([]int32, l1Size),
		l1Vals: make([]V, l1Size),
		l1Mask: uint32(l1Size - 1),
		l2:     NewHashTableG[V](64),
	}
	t.l2.SetGrow(true)
	for i := range t.l1Keys {
		t.l1Keys[i] = emptyKey
	}
	return t
}

// Reset clears both levels in O(entries).
//
//spgemm:hotpath
func (t *TwoLevelHashG[V]) Reset() {
	for _, s := range t.l1Used {
		t.l1Keys[s] = emptyKey
	}
	t.l1Used = t.l1Used[:0]
	t.l2.Reset()
}

// Len returns the number of distinct keys across both levels.
func (t *TwoLevelHashG[V]) Len() int { return len(t.l1Used) + t.l2.Len() }

// L2Len returns the number of keys that overflowed to level 2 (test hook).
func (t *TwoLevelHashG[V]) L2Len() int { return t.l2.Len() }

// Overflows returns the cumulative count of operations delegated to level 2.
func (t *TwoLevelHashG[V]) Overflows() int64 { return t.overflows }

// Lookups returns the cumulative operation count of the level-2 table (the
// level-1 fast path is deliberately uncounted to keep its CAS loop lean).
//
//spgemm:hotpath
func (t *TwoLevelHashG[V]) Lookups() int64 { return t.l2.Lookups() }

// Probes returns the collision probe steps of the level-2 table.
func (t *TwoLevelHashG[V]) Probes() int64 { return t.l2.Probes() }

// InsertSymbolic inserts key if absent, reporting whether it was new.
//
//spgemm:hotpath
func (t *TwoLevelHashG[V]) InsertSymbolic(key int32) bool {
	s := (uint32(key) * hashConst) & t.l1Mask
	for probe := 0; probe < l1ProbeBound; probe++ {
		k := atomic.LoadInt32(&t.l1Keys[s])
		if k == key {
			return false
		}
		if k == emptyKey {
			if atomic.CompareAndSwapInt32(&t.l1Keys[s], emptyKey, key) {
				t.l1Used = append(t.l1Used, int32(s))
				return true
			}
			// Lost the race (kkmem team semantics); re-read this slot.
			probe--
			continue
		}
		s = (s + 1) & t.l1Mask
	}
	t.overflows++
	return t.l2.InsertSymbolic(key)
}

// Upsert returns a pointer to key's value slot (level 1 or the overflow
// table) and whether the key is new. The pointer is invalidated by the next
// Upsert (the level-2 table grows); the caller must finish its read-modify-
// write before the next operation, which the row-by-row drivers do.
//
//spgemm:hotpath
func (t *TwoLevelHashG[V]) Upsert(key int32) (*V, bool) {
	s := (uint32(key) * hashConst) & t.l1Mask
	for probe := 0; probe < l1ProbeBound; probe++ {
		k := atomic.LoadInt32(&t.l1Keys[s])
		if k == key {
			return &t.l1Vals[s], false
		}
		if k == emptyKey {
			if atomic.CompareAndSwapInt32(&t.l1Keys[s], emptyKey, key) {
				t.l1Used = append(t.l1Used, int32(s))
				return &t.l1Vals[s], true
			}
			probe--
			continue
		}
		s = (s + 1) & t.l1Mask
	}
	t.overflows++
	return t.l2.Upsert(key)
}

// Lookup returns the value for key and whether it is present in either level.
func (t *TwoLevelHashG[V]) Lookup(key int32) (V, bool) {
	s := (uint32(key) * hashConst) & t.l1Mask
	for probe := 0; probe < l1ProbeBound; probe++ {
		k := t.l1Keys[s]
		if k == key {
			return t.l1Vals[s], true
		}
		if k == emptyKey {
			var zero V
			return zero, false
		}
		s = (s + 1) & t.l1Mask
	}
	return t.l2.Lookup(key)
}

// ExtractUnsorted writes all entries (level 1 then level 2) and returns the
// count.
//
//spgemm:hotpath
func (t *TwoLevelHashG[V]) ExtractUnsorted(cols []int32, vals []V) int {
	n := 0
	for _, s := range t.l1Used {
		cols[n] = t.l1Keys[s]
		vals[n] = t.l1Vals[s]
		n++
	}
	n += t.l2.ExtractUnsorted(cols[n:], vals[n:])
	return n
}

// ExtractSorted writes all entries in increasing key order.
//
//spgemm:hotpath
func (t *TwoLevelHashG[V]) ExtractSorted(cols []int32, vals []V) int {
	n := t.ExtractUnsorted(cols, vals)
	sortPairs(cols[:n], vals[:n])
	return n
}
