package accum

import (
	"math"
	"sync/atomic"
)

// TwoLevelHash models KokkosKernels' kkmem accumulator: a small fixed-size
// first-level hash table sized to fit in cache, with a growable second-level
// table absorbing the overflow. Probing in level 1 is bounded; once a probe
// sequence exceeds the bound the key is delegated to level 2.
//
// Insertions and value updates in level 1 go through atomic
// compare-and-swap, mirroring kkmem's thread-team execution model in which
// several lanes may insert into a shared table concurrently. The paper makes
// exactly this point about its own Hash SpGEMM: "Hash SpGEMM on GPU requires
// some form of mutual exclusion ... We were able to remove this overhead in
// our present Hash SpGEMM" (Section 4.2.1) — the portable kkmem retains it,
// which is one reason KokkosKernels trails the specialized Hash kernel in
// the paper's Figures 11–15, and the same gap appears in this
// reimplementation.
type TwoLevelHash struct {
	l1Keys []int32
	l1Vals []uint64 // float64 bit patterns, updated with CAS
	l1Used []int32
	l1Mask uint32
	l2     *HashTable
	// overflows counts operations delegated to level 2 after an exhausted
	// level-1 probe sequence, feeding the L2Overflows ExecStats counter.
	overflows int64
}

// l1ProbeBound is the maximum linear-probe distance in level 1 before
// delegating to level 2.
const l1ProbeBound = 8

// DefaultL1Size is the default level-1 capacity: 4096 slots × 12 bytes sits
// comfortably in a 256 KiB L2 tile, mirroring kkmem's cache-resident intent.
const DefaultL1Size = 4096

// NewTwoLevelHash returns a two-level accumulator with the given level-1
// capacity (a power of two; 0 selects DefaultL1Size).
func NewTwoLevelHash(l1Size int) *TwoLevelHash {
	if l1Size == 0 {
		l1Size = DefaultL1Size
	}
	if l1Size < 16 || l1Size&(l1Size-1) != 0 {
		panic("accum: level-1 size must be a power of two >= 16")
	}
	t := &TwoLevelHash{
		l1Keys: make([]int32, l1Size),
		l1Vals: make([]uint64, l1Size),
		l1Mask: uint32(l1Size - 1),
		l2:     NewHashTable(64),
	}
	t.l2.SetGrow(true)
	for i := range t.l1Keys {
		t.l1Keys[i] = emptyKey
	}
	return t
}

// Reset clears both levels in O(entries).
//
//spgemm:hotpath
func (t *TwoLevelHash) Reset() {
	for _, s := range t.l1Used {
		t.l1Keys[s] = emptyKey
	}
	t.l1Used = t.l1Used[:0]
	t.l2.Reset()
}

// Len returns the number of distinct keys across both levels.
func (t *TwoLevelHash) Len() int { return len(t.l1Used) + t.l2.Len() }

// L2Len returns the number of keys that overflowed to level 2 (test hook).
func (t *TwoLevelHash) L2Len() int { return t.l2.Len() }

// Overflows returns the cumulative count of operations delegated to level 2.
func (t *TwoLevelHash) Overflows() int64 { return t.overflows }

// Lookups returns the cumulative operation count of the level-2 table (the
// level-1 fast path is deliberately uncounted to keep its CAS loop lean).
//
//spgemm:hotpath
func (t *TwoLevelHash) Lookups() int64 { return t.l2.Lookups() }

// Probes returns the collision probe steps of the level-2 table.
func (t *TwoLevelHash) Probes() int64 { return t.l2.Probes() }

// InsertSymbolic inserts key if absent, reporting whether it was new.
//
//spgemm:hotpath
func (t *TwoLevelHash) InsertSymbolic(key int32) bool {
	s := (uint32(key) * hashConst) & t.l1Mask
	for probe := 0; probe < l1ProbeBound; probe++ {
		k := atomic.LoadInt32(&t.l1Keys[s])
		if k == key {
			return false
		}
		if k == emptyKey {
			if atomic.CompareAndSwapInt32(&t.l1Keys[s], emptyKey, key) {
				t.l1Used = append(t.l1Used, int32(s))
				return true
			}
			// Lost the race (kkmem team semantics); re-read this slot.
			probe--
			continue
		}
		s = (s + 1) & t.l1Mask
	}
	t.overflows++
	return t.l2.InsertSymbolic(key)
}

// Accumulate adds v into key's entry, inserting if absent. The value update
// is a CAS loop on the float64 bit pattern, kkmem-style.
//
//spgemm:hotpath
func (t *TwoLevelHash) Accumulate(key int32, v float64) {
	t.accumulate(key, v, nil)
}

// AccumulateFunc is Accumulate under an arbitrary additive operation.
//
//spgemm:hotpath
func (t *TwoLevelHash) AccumulateFunc(key int32, v float64, add func(a, b float64) float64) {
	t.accumulate(key, v, add)
}

//spgemm:hotpath
func (t *TwoLevelHash) accumulate(key int32, v float64, add func(a, b float64) float64) {
	s := (uint32(key) * hashConst) & t.l1Mask
	for probe := 0; probe < l1ProbeBound; probe++ {
		k := atomic.LoadInt32(&t.l1Keys[s])
		if k == key {
			t.atomicAdd(s, v, add)
			return
		}
		if k == emptyKey {
			if atomic.CompareAndSwapInt32(&t.l1Keys[s], emptyKey, key) {
				t.l1Used = append(t.l1Used, int32(s))
				atomic.StoreUint64(&t.l1Vals[s], math.Float64bits(v))
				return
			}
			probe--
			continue
		}
		s = (s + 1) & t.l1Mask
	}
	t.overflows++
	if add == nil {
		t.l2.Accumulate(key, v)
	} else {
		t.l2.AccumulateFunc(key, v, add)
	}
}

// atomicAdd merges v into slot s with a compare-and-swap loop.
//
//spgemm:hotpath
func (t *TwoLevelHash) atomicAdd(s uint32, v float64, add func(a, b float64) float64) {
	for {
		old := atomic.LoadUint64(&t.l1Vals[s])
		var merged float64
		if add == nil {
			merged = math.Float64frombits(old) + v
		} else {
			merged = add(math.Float64frombits(old), v)
		}
		if atomic.CompareAndSwapUint64(&t.l1Vals[s], old, math.Float64bits(merged)) {
			return
		}
	}
}

// Lookup returns the value for key and whether it is present in either level.
func (t *TwoLevelHash) Lookup(key int32) (float64, bool) {
	s := (uint32(key) * hashConst) & t.l1Mask
	for probe := 0; probe < l1ProbeBound; probe++ {
		k := t.l1Keys[s]
		if k == key {
			return math.Float64frombits(atomic.LoadUint64(&t.l1Vals[s])), true
		}
		if k == emptyKey {
			return 0, false
		}
		s = (s + 1) & t.l1Mask
	}
	return t.l2.Lookup(key)
}

// ExtractUnsorted writes all entries (level 1 then level 2) and returns the
// count.
//
//spgemm:hotpath
func (t *TwoLevelHash) ExtractUnsorted(cols []int32, vals []float64) int {
	n := 0
	for _, s := range t.l1Used {
		cols[n] = t.l1Keys[s]
		vals[n] = math.Float64frombits(t.l1Vals[s])
		n++
	}
	n += t.l2.ExtractUnsorted(cols[n:], vals[n:])
	return n
}

// ExtractSorted writes all entries in increasing key order.
//
//spgemm:hotpath
func (t *TwoLevelHash) ExtractSorted(cols []int32, vals []float64) int {
	n := t.ExtractUnsorted(cols, vals)
	sortPairs(cols[:n], vals[:n])
	return n
}
