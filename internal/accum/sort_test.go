package accum

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortPairsAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300)
		cols := make([]int32, n)
		vals := make([]float64, n)
		type pair struct {
			c int32
			v float64
		}
		ref := make([]pair, n)
		for i := 0; i < n; i++ {
			cols[i] = int32(rng.Intn(50)) // duplicates likely
			vals[i] = float64(i)
			ref[i] = pair{cols[i], vals[i]}
		}
		sortPairs(cols, vals)
		sort.SliceStable(ref, func(a, b int) bool { return ref[a].c < ref[b].c })
		// Keys must match the reference exactly; values must stay paired
		// with their original key (compare multisets per key).
		for i := 0; i < n; i++ {
			if cols[i] != ref[i].c {
				return false
			}
		}
		// Check pairing: group values by key in both and compare sets.
		got := map[int32]map[float64]int{}
		want := map[int32]map[float64]int{}
		for i := 0; i < n; i++ {
			if got[cols[i]] == nil {
				got[cols[i]] = map[float64]int{}
			}
			got[cols[i]][vals[i]]++
			if want[ref[i].c] == nil {
				want[ref[i].c] = map[float64]int{}
			}
			want[ref[i].c][ref[i].v]++
		}
		for k, m := range want {
			for v, c := range m {
				if got[k][v] != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSortPairsAdversarialPatterns(t *testing.T) {
	patterns := map[string]func(n int) []int32{
		"sorted": func(n int) []int32 {
			out := make([]int32, n)
			for i := range out {
				out[i] = int32(i)
			}
			return out
		},
		"reversed": func(n int) []int32 {
			out := make([]int32, n)
			for i := range out {
				out[i] = int32(n - i)
			}
			return out
		},
		"constant": func(n int) []int32 {
			return make([]int32, n)
		},
		"organ-pipe": func(n int) []int32 {
			out := make([]int32, n)
			for i := range out {
				if i < n/2 {
					out[i] = int32(i)
				} else {
					out[i] = int32(n - i)
				}
			}
			return out
		},
	}
	for name, f := range patterns {
		for _, n := range []int{0, 1, 25, 100, 1000} {
			cols := f(n)
			vals := make([]float64, n)
			sortPairs(cols, vals)
			if !sort.SliceIsSorted(cols, func(a, b int) bool { return cols[a] < cols[b] }) {
				t.Fatalf("%s n=%d: not sorted", name, n)
			}
		}
	}
}
