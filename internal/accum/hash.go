// Package accum implements the per-row accumulators that distinguish the
// SpGEMM algorithm families studied in the paper (Section 4.2): the
// linear-probing hash table of Hash SpGEMM, the chunked hash table of
// HashVector SpGEMM, the k-way merge heap of Heap SpGEMM, the dense sparse
// accumulator (SPA) of Gustavson's algorithm, and a two-level hashmap in the
// style of KokkosKernels' kkmem.
//
// All accumulators are generic over the stored value type V and know nothing
// about semirings: the single value-level operation they expose is
// Upsert(key) → (*V, fresh), which returns a pointer to the value slot for
// key and whether the key is new. The SpGEMM drivers apply the (inlined,
// monomorphized) ring operations to the slot; the float64 type aliases
// (HashTable, SPA, …) preserve the historic API.
//
// All accumulators follow the paper's allocation discipline: they are owned
// by one worker, allocated once at the upper-bound size for that worker's
// rows, and reinitialized per row in O(entries) time rather than O(size).
package accum

import (
	"slices"

	"repro/internal/semiring"
)

const emptyKey = int32(-1)

// hashConst is the multiplicative hashing constant. The paper multiplies the
// column index by a constant and takes the remainder modulo the (power of
// two) table size; 0x9E3779B1 is the golden-ratio constant, which spreads
// consecutive indices well.
const hashConst = uint32(0x9E3779B1)

// NextPow2 returns the smallest power of two strictly greater than n, which
// is how the paper sizes hash tables ("Return minimum 2^n so that 2^n >
// size_t"), guaranteeing at least one empty slot.
func NextPow2(n int64) int64 {
	p := int64(1)
	for p <= n {
		p <<= 1
	}
	return p
}

// HashTableG is the accumulator of Hash SpGEMM: open addressing with linear
// probing over a power-of-two table, keys initialized to -1. It tracks the
// occupied slots so a per-row reset costs O(entries), not O(capacity).
type HashTableG[V semiring.Value] struct {
	keys []int32
	vals []V
	used []int32 // occupied slot indices in insertion order
	mask uint32
	// probes counts every extra probe step beyond the first, i.e. the
	// collision work. probes/inserts+1 approximates the paper's collision
	// factor c of Equation (2).
	probes  int64
	lookups int64
	// grow enables automatic rehashing at 3/4 load. The paper's Hash
	// SpGEMM presizes tables from the flop upper bound and never grows;
	// the two-level (Kokkos-style) accumulator uses a growing second level.
	grow bool
}

// HashTable is the float64 instantiation — the historic type of this package.
type HashTable = HashTableG[float64]

// NewHashTable returns a float64 table with capacity the smallest power of
// two strictly greater than bound (minimum 16).
func NewHashTable(bound int64) *HashTable { return NewHashTableG[float64](bound) }

// NewHashTableG returns a table over V with capacity the smallest power of
// two strictly greater than bound (minimum 16).
func NewHashTableG[V semiring.Value](bound int64) *HashTableG[V] {
	h := &HashTableG[V]{}
	h.Reserve(bound)
	return h
}

// Reserve re-sizes the table to hold bound entries (capacity = NextPow2,
// min 16) and clears it. Existing entries are discarded.
func (h *HashTableG[V]) Reserve(bound int64) {
	capacity := NextPow2(bound)
	if capacity < 16 {
		capacity = 16
	}
	if int64(len(h.keys)) != capacity {
		h.keys = make([]int32, capacity)
		h.vals = make([]V, capacity)
	}
	for i := range h.keys {
		h.keys[i] = emptyKey
	}
	h.used = h.used[:0]
	h.mask = uint32(capacity - 1)
}

// Reset clears the table in O(entries) by walking the used-slot list.
//
//spgemm:hotpath
func (h *HashTableG[V]) Reset() {
	// Deriving the mask from len(keys) lets the prove pass see
	// s&mask < len(keys) and drop the bounds check in the loop
	// (spgemm-lint -mode=bce budgets the residuals).
	keys := h.keys
	mask := len(keys) - 1
	if mask < 0 {
		return
	}
	for _, s := range h.used {
		keys[int(s)&mask] = emptyKey
	}
	h.used = h.used[:0]
}

// Len returns the number of distinct keys currently stored.
func (h *HashTableG[V]) Len() int { return len(h.used) }

// Cap returns the table capacity (a power of two).
func (h *HashTableG[V]) Cap() int { return len(h.keys) }

// Probes returns the cumulative count of collision probe steps; divide by
// Lookups for the mean collision factor.
func (h *HashTableG[V]) Probes() int64 { return h.probes }

// Lookups returns the cumulative number of insert/accumulate operations.
//
//spgemm:hotpath
func (h *HashTableG[V]) Lookups() int64 { return h.lookups }

//spgemm:hotpath
func (h *HashTableG[V]) slot(key int32) uint32 {
	return (uint32(key) * hashConst) & h.mask
}

// InsertSymbolic inserts key if absent and reports whether it was new. This
// is the whole inner loop of the symbolic phase: values are not touched.
//
//spgemm:hotpath
func (h *HashTableG[V]) InsertSymbolic(key int32) bool {
	h.lookups++
	// Probe with an int cursor masked by len(keys)-1 so every keys[s] in
	// the loop is provably in bounds (no IsInBounds per probe step).
	keys := h.keys
	mask := len(keys) - 1
	if mask < 0 {
		return false
	}
	// The mask is applied at each index use (not on the loop cursor): the
	// prove pass bounds j = s&mask directly, but loses the bound through
	// the loop-carried phi of a pre-masked cursor.
	s := int(uint32(key) * hashConst)
	for {
		j := s & mask
		k := keys[j]
		if k == key {
			return false
		}
		if k == emptyKey {
			keys[j] = key
			h.used = append(h.used, int32(j))
			h.maybeGrow()
			return true
		}
		h.probes++
		s++
	}
}

// Upsert returns a pointer to the value slot for key and whether the key is
// new. On fresh == true the slot's contents are stale; the caller must store
// a value before the next extraction (the SpGEMM drivers write the first
// product, then ring.Add into the slot on subsequent hits). The pointer is
// invalidated by the next Upsert/InsertSymbolic on a grow-enabled table.
//
//spgemm:hotpath
func (h *HashTableG[V]) Upsert(key int32) (*V, bool) {
	h.lookups++
	// Same masked-index shape as InsertSymbolic; vals is re-sliced to
	// len(keys) so vals[j] shares the proof (one slice check at entry
	// replaces an IsInBounds per probe step). The grow path lives in its
	// own method so keys/mask/vals stay loop-invariant — reassigning them
	// in the loop makes them phis and defeats the prove pass.
	keys := h.keys
	mask := len(keys) - 1
	if mask < 0 {
		return nil, false
	}
	vals := h.vals[:len(keys)]
	s := int(uint32(key) * hashConst)
	for {
		j := s & mask
		k := keys[j]
		if k == key {
			return &vals[j], false
		}
		if k == emptyKey {
			if h.grow && (len(h.used)+1)*4 >= len(keys)*3 {
				return h.upsertGrow(key)
			}
			keys[j] = key
			h.used = append(h.used, int32(j))
			return &vals[j], true
		}
		h.probes++
		s++
	}
}

// upsertGrow is Upsert's cold path: rehash into a doubled table, then insert
// key (known absent — the caller only gets here after probing to an empty
// slot) so the returned pointer aims at the post-rehash storage.
func (h *HashTableG[V]) upsertGrow(key int32) (*V, bool) {
	h.growRehash()
	s := h.slot(key)
	for h.keys[s] != emptyKey {
		h.probes++
		s = (s + 1) & h.mask
	}
	h.keys[s] = key
	h.used = append(h.used, int32(s))
	return &h.vals[s], true
}

// Lookup returns the value stored for key and whether it is present.
func (h *HashTableG[V]) Lookup(key int32) (V, bool) {
	s := h.slot(key)
	for {
		k := h.keys[s]
		if k == key {
			return h.vals[s], true
		}
		if k == emptyKey {
			var zero V
			return zero, false
		}
		s = (s + 1) & h.mask
	}
}

// SetGrow enables or disables automatic rehashing at 3/4 load.
func (h *HashTableG[V]) SetGrow(on bool) { h.grow = on }

func (h *HashTableG[V]) maybeGrow() {
	if !h.grow || len(h.used)*4 < len(h.keys)*3 {
		return
	}
	h.growRehash()
}

func (h *HashTableG[V]) growRehash() {
	oldKeys, oldVals, oldUsed := h.keys, h.vals, append([]int32(nil), h.used...)
	capacity := int64(len(h.keys)) * 2
	h.keys = make([]int32, capacity)
	h.vals = make([]V, capacity)
	for i := range h.keys {
		h.keys[i] = emptyKey
	}
	h.mask = uint32(capacity - 1)
	h.used = h.used[:0]
	for _, s := range oldUsed {
		key := oldKeys[s]
		v := oldVals[s]
		ns := h.slot(key)
		for h.keys[ns] != emptyKey {
			ns = (ns + 1) & h.mask
		}
		h.keys[ns] = key
		h.vals[ns] = v
		h.used = append(h.used, int32(ns))
	}
}

// ExtractUnsorted appends the (key, value) pairs in insertion order to cols
// and vals, which must have room for Len() more entries starting at offset.
// It returns the number of entries written.
//
//spgemm:hotpath
func (h *HashTableG[V]) ExtractUnsorted(cols []int32, vals []V) int {
	used := h.used
	n := len(used)
	// Reslicing the destinations to n and masking the slot index trades
	// four per-entry bounds checks for two slice checks at entry.
	cols = cols[:n]
	vals = vals[:n]
	keys := h.keys
	mask := len(keys) - 1
	if mask < 0 {
		return 0
	}
	tvals := h.vals[:len(keys)]
	for i, s := range used {
		j := int(s) & mask
		cols[i] = keys[j]
		vals[i] = tvals[j]
	}
	return n
}

// ExtractSorted writes the (key, value) pairs in increasing key order — the
// sorting step the paper shows algorithms can skip when unsorted output is
// acceptable.
//
//spgemm:hotpath
func (h *HashTableG[V]) ExtractSorted(cols []int32, vals []V) int {
	n := h.ExtractUnsorted(cols, vals)
	sortPairs(cols[:n], vals[:n])
	return n
}

// ExtractKeysSorted writes just the keys, sorted; used by symbolic-phase
// consumers that want patterns.
//
//spgemm:hotpath
func (h *HashTableG[V]) ExtractKeysSorted(cols []int32) int {
	used := h.used
	n := len(used)
	cols = cols[:n]
	keys := h.keys
	mask := len(keys) - 1
	if mask < 0 {
		return 0
	}
	for i, s := range used {
		cols[i] = keys[int(s)&mask]
	}
	slices.Sort(cols)
	return n
}

// sortPairs sorts cols ascending carrying vals along: insertion sort for
// short rows, median-of-three quicksort above. A dedicated dual-array sort
// avoids the interface-call overhead of sort.Sort in what is the hot path of
// every sorted-output extraction (the cost the paper's unsorted mode skips).
//
//spgemm:hotpath
func sortPairs[V semiring.Value](cols []int32, vals []V) {
	for len(cols) > 24 {
		// Median-of-three pivot to dodge the sorted/reversed worst cases.
		n := len(cols)
		m := n / 2
		if cols[m] < cols[0] {
			cols[m], cols[0] = cols[0], cols[m]
			vals[m], vals[0] = vals[0], vals[m]
		}
		if cols[n-1] < cols[0] {
			cols[n-1], cols[0] = cols[0], cols[n-1]
			vals[n-1], vals[0] = vals[0], vals[n-1]
		}
		if cols[n-1] < cols[m] {
			cols[n-1], cols[m] = cols[m], cols[n-1]
			vals[n-1], vals[m] = vals[m], vals[n-1]
		}
		pivot := cols[m]
		i, j := 0, n-1
		for i <= j {
			for cols[i] < pivot {
				i++
			}
			for cols[j] > pivot {
				j--
			}
			if i <= j {
				cols[i], cols[j] = cols[j], cols[i]
				vals[i], vals[j] = vals[j], vals[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j+1 < n-i {
			sortPairs(cols[:j+1], vals[:j+1])
			cols, vals = cols[i:], vals[i:]
		} else {
			sortPairs(cols[i:], vals[i:])
			cols, vals = cols[:j+1], vals[:j+1]
		}
	}
	// Insertion sort for the base case.
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1] = cols[j]
			vals[j+1] = vals[j]
			j--
		}
		cols[j+1] = c
		vals[j+1] = v
	}
}

// SortPairs sorts cols ascending carrying vals along (exported for the
// kernels that maintain their own column/value staging buffers).
//
//spgemm:hotpath
func SortPairs[V semiring.Value](cols []int32, vals []V) { sortPairs(cols, vals) }

// ResetCounters zeroes the cumulative probe/lookup counters without touching
// the table contents or capacity. spgemm.Context calls it when reusing a
// cached table so per-call ExecStats keep the semantics of a fresh table.
func (h *HashTableG[V]) ResetCounters() { h.probes, h.lookups = 0, 0 }
