package accum

import "testing"

// TestMergeHeapPushCounter verifies the cumulative push counter feeding the
// HeapPushes ExecStats field.
func TestMergeHeapPushCounter(t *testing.T) {
	h := NewMergeHeap(4)
	if h.Pushes() != 0 {
		t.Fatalf("fresh heap pushes = %d", h.Pushes())
	}
	h.Push(3, 1.0, 0, 2)
	h.Push(1, 2.0, 0, 2)
	if h.Pushes() != 2 {
		t.Fatalf("pushes = %d, want 2", h.Pushes())
	}
	h.Reset()
	h.Push(5, 1.0, 0, 1)
	if h.Pushes() != 3 {
		t.Fatalf("pushes must be cumulative across Reset: %d, want 3", h.Pushes())
	}
}

// TestTwoLevelOverflowCounter forces level-1 exhaustion with a tiny L1 and
// checks the delegation counters: every overflow is one level-2 operation,
// and the table still returns correct contents.
func TestTwoLevelOverflowCounter(t *testing.T) {
	tl := NewTwoLevelHash(16)
	if tl.Overflows() != 0 || tl.Lookups() != 0 {
		t.Fatal("fresh table has nonzero counters")
	}
	// 64 distinct keys into 16 L1 slots with probe bound 8 must overflow.
	for k := int32(0); k < 64; k++ {
		plusAcc(tl, k, float64(k))
	}
	if tl.Overflows() == 0 {
		t.Fatal("no overflows recorded for 64 keys in a 16-slot L1")
	}
	if tl.Lookups() != tl.Overflows() {
		t.Fatalf("L2 lookups %d != overflow delegations %d", tl.Lookups(), tl.Overflows())
	}
	if tl.Probes() < 0 {
		t.Fatalf("probes = %d", tl.Probes())
	}
	if tl.Len() != 64 {
		t.Fatalf("len = %d, want 64", tl.Len())
	}
	for k := int32(0); k < 64; k++ {
		v, ok := tl.Lookup(k)
		if !ok || v != float64(k) {
			t.Fatalf("key %d: %v %v", k, v, ok)
		}
	}
	// Symbolic insertion also counts delegations.
	before := tl.Overflows()
	tl.Reset()
	for k := int32(0); k < 64; k++ {
		tl.InsertSymbolic(k)
	}
	if tl.Overflows() <= before {
		t.Fatal("symbolic overflow not counted")
	}
}

// TestHashTableOperationCounters pins the Lookups/Probes contract the
// ExecStats collision factor is built on: lookups count operations, probes
// count extra slot visits beyond the first.
func TestHashTableOperationCounters(t *testing.T) {
	h := NewHashTable(64)
	base := h.Lookups()
	plusAcc(h, 1, 1)
	plusAcc(h, 1, 1) // same key: still one op each
	h.InsertSymbolic(2)
	if got := h.Lookups() - base; got != 3 {
		t.Fatalf("lookups delta = %d, want 3", got)
	}
	if h.Probes() < 0 {
		t.Fatalf("probes = %d", h.Probes())
	}
}
