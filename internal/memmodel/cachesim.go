package memmodel

import (
	"fmt"

	"repro/internal/matrix"
)

// This file provides a small set-associative LRU cache simulator and a
// replay of the hash-SpGEMM access pattern through it. Its purpose is to
// ground the two-tier MCDRAM model of Figure 10 in simulated cache behaviour
// instead of a hand-calibrated constant: the fraction of accumulator updates
// and B-row reads that actually reach memory is whatever the simulated cache
// says, for the actual matrix being multiplied.

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line size (power of two)
	Ways      int // associativity
}

// KNLTileL2 approximates one KNL tile's 1 MiB 16-way L2 (two cores share a
// tile; a single-threaded replay sees the full megabyte).
var KNLTileL2 = CacheConfig{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	sets      [][]uint64 // tags per set, index 0 = most recently used
	setMask   uint64
	lineShift uint
	hits      int64
	misses    int64
}

// NewCache builds a cache; it panics on non-power-of-two geometry since that
// indicates a configuration bug, not a runtime condition.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("memmodel: line size %d not a power of two", cfg.LineBytes))
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if cfg.Ways <= 0 || lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("memmodel: %d lines not divisible by %d ways", lines, cfg.Ways))
	}
	nsets := lines / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("memmodel: %d sets not a power of two", nsets))
	}
	c := &Cache{
		sets:    make([][]uint64, nsets),
		setMask: uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, cfg.Ways)
	}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.lineShift++
	}
	return c
}

// Access touches addr and reports whether it hit. Misses fill the line,
// evicting the LRU way if the set is full.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := c.sets[line&c.setMask]
	for i, tag := range set {
		if tag == line {
			// Move to MRU position.
			copy(set[1:i+1], set[:i])
			set[0] = line
			c.hits++
			return true
		}
	}
	c.misses++
	if len(set) < cap(set) {
		set = set[:len(set)+1]
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[line&c.setMask] = set
	return false
}

// Hits and Misses report the access counts so far.
func (c *Cache) Hits() int64   { return c.hits }
func (c *Cache) Misses() int64 { return c.misses }

// MissRate returns misses / accesses (0 if nothing was accessed).
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// SimStats is the outcome of replaying a SpGEMM through the cache:
// per-category access and miss counts.
type SimStats struct {
	BAccesses, BMisses     int64 // B column/value reads (stanza traffic)
	AccAccesses, AccMisses int64 // accumulator (hash table / heap) updates
	AAccesses, AMisses     int64 // A row reads (streaming)
	SampledRows            int   // rows actually replayed
	SampledFlop            int64 // intermediate products actually replayed
	LineBytes              int   // cache line size used (memory fetch unit)
}

// AccumulatorSpill is the fraction of accumulator updates that reached
// memory — the quantity the analytic model needs.
func (s SimStats) AccumulatorSpill() float64 {
	if s.AccAccesses == 0 {
		return 0
	}
	return float64(s.AccMisses) / float64(s.AccAccesses)
}

// BMissRate is the fraction of B-row element reads that missed.
func (s SimStats) BMissRate() float64 {
	if s.BAccesses == 0 {
		return 0
	}
	return float64(s.BMisses) / float64(s.BAccesses)
}

// SimulateHashSpGEMM replays the numeric phase of the hash SpGEMM for A·B
// through a cache of the given configuration and returns the per-category
// statistics. At most maxFlop intermediate products are replayed (rows are
// stride-sampled); 0 means 2M products.
//
// The address space is laid out like the real implementation: A's index and
// value arrays, B's row pointers, indices and values, and one thread-private
// hash table sized per the Figure 7 rule. Hash slots are computed with the
// same multiplicative hash as the real accumulator (probing on collision is
// ignored — second-order for cache behaviour).
func SimulateHashSpGEMM(a, b *matrix.CSR, cfg CacheConfig, maxFlop int64) SimStats {
	if maxFlop <= 0 {
		maxFlop = 2 << 20
	}
	cache := NewCache(cfg)

	// Synthetic address space (byte addresses).
	const (
		baseACols = uint64(0)
		gap       = uint64(1) << 40 // keep regions far apart
	)
	baseAVals := baseACols + gap
	baseBPtr := baseAVals + gap
	baseBCols := baseBPtr + gap
	baseBVals := baseBCols + gap
	baseTable := baseBVals + gap

	// Hash table size: max per-row flop, capped at Cols, next pow2.
	_, flopRow := matrix.Flop(a, b)
	var maxRowFlop int64
	var total int64
	for _, f := range flopRow {
		if f > maxRowFlop {
			maxRowFlop = f
		}
		total += f
	}
	if maxRowFlop > int64(b.Cols) {
		maxRowFlop = int64(b.Cols)
	}
	tsize := int64(1)
	for tsize <= maxRowFlop {
		tsize <<= 1
	}
	mask := uint32(tsize - 1)

	// Stride-sample rows so the replay covers the whole matrix.
	stride := 1
	if total > maxFlop {
		stride = int(total / maxFlop)
		if stride < 1 {
			stride = 1
		}
	}

	var st SimStats
	st.LineBytes = cfg.LineBytes
	var replayed int64
	for i := 0; i < a.Rows && replayed < maxFlop; i += stride {
		st.SampledRows++
		alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
		for p := alo; p < ahi && replayed < maxFlop; p++ {
			// Read a_ik (index + value).
			if !cache.Access(baseACols + uint64(p)*4) {
				st.AMisses++
			}
			st.AAccesses++
			if !cache.Access(baseAVals + uint64(p)*8) {
				st.AMisses++
			}
			st.AAccesses++

			k := a.ColIdx[p]
			// Row pointer lookup.
			if !cache.Access(baseBPtr + uint64(k)*8) {
				st.AMisses++
			}
			st.AAccesses++

			blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
			for q := blo; q < bhi; q++ {
				// Read b_kj (index + value): the stanza pattern.
				if !cache.Access(baseBCols + uint64(q)*4) {
					st.BMisses++
				}
				st.BAccesses++
				if !cache.Access(baseBVals + uint64(q)*8) {
					st.BMisses++
				}
				st.BAccesses++
				// Accumulator update at the hashed slot (12 B entry).
				slot := (uint32(b.ColIdx[q]) * 0x9E3779B1) & mask
				if !cache.Access(baseTable + uint64(slot)*12) {
					st.AccMisses++
				}
				st.AccAccesses++
				replayed++
			}
		}
	}
	st.SampledFlop = replayed
	return st
}

// SimulateHeapSpGEMM replays the numeric phase of Heap SpGEMM: a k-way
// merge whose cursors advance one element at a time through the contributing
// rows of B, interleaved in column order — the fine-grained access pattern
// that denies the heap algorithm any MCDRAM benefit in the paper's
// Figure 10. The heap itself is tiny (nnz(a_i*) cursors) and thread-private,
// so only the B reads are replayed against the cache.
func SimulateHeapSpGEMM(a, b *matrix.CSR, cfg CacheConfig, maxFlop int64) SimStats {
	if maxFlop <= 0 {
		maxFlop = 2 << 20
	}
	cache := NewCache(cfg)
	const gap = uint64(1) << 40
	baseBCols := gap
	baseBVals := 2 * gap

	_, flopRow := matrix.Flop(a, b)
	var total int64
	for _, f := range flopRow {
		total += f
	}
	stride := 1
	if total > maxFlop {
		stride = int(total / maxFlop)
		if stride < 1 {
			stride = 1
		}
	}

	var st SimStats
	st.LineBytes = cfg.LineBytes
	var replayed int64
	h := newSimHeap()
	for i := 0; i < a.Rows && replayed < maxFlop; i += stride {
		st.SampledRows++
		h.reset()
		alo, ahi := a.RowPtr[i], a.RowPtr[i+1]
		for p := alo; p < ahi; p++ {
			k := a.ColIdx[p]
			blo, bhi := b.RowPtr[k], b.RowPtr[k+1]
			if blo < bhi {
				h.push(b.ColIdx[blo], blo, bhi)
			}
		}
		for h.len() > 0 && replayed < maxFlop {
			pos := h.minPos()
			// Touch the cursor's current element: index + value.
			if !cache.Access(baseBCols + uint64(pos)*4) {
				st.BMisses++
			}
			st.BAccesses++
			if !cache.Access(baseBVals + uint64(pos)*8) {
				st.BMisses++
			}
			st.BAccesses++
			st.AccAccesses++ // heap sift: cache-resident, counted not replayed
			replayed++
			if pos+1 < h.minEnd() {
				h.advance(b.ColIdx[pos+1])
			} else {
				h.pop()
			}
		}
	}
	st.SampledFlop = replayed
	return st
}

// simHeap is a minimal column-ordered cursor heap for the replay (kept local
// to avoid an import cycle with internal/accum, whose MergeHeap carries the
// value state the simulator does not need).
type simHeap struct {
	col []int32
	pos []int64
	end []int64
}

func newSimHeap() *simHeap { return &simHeap{} }

func (h *simHeap) len() int { return len(h.col) }
func (h *simHeap) reset()   { h.col, h.pos, h.end = h.col[:0], h.pos[:0], h.end[:0] }

func (h *simHeap) push(col int32, pos, end int64) {
	h.col = append(h.col, col)
	h.pos = append(h.pos, pos)
	h.end = append(h.end, end)
	for i := len(h.col) - 1; i > 0; {
		parent := (i - 1) / 2
		if h.col[parent] <= h.col[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *simHeap) minPos() int64 { return h.pos[0] }
func (h *simHeap) minEnd() int64 { return h.end[0] }

func (h *simHeap) advance(nextCol int32) {
	h.col[0] = nextCol
	h.pos[0]++
	h.siftDown()
}

func (h *simHeap) pop() {
	last := len(h.col) - 1
	h.swap(0, last)
	h.col = h.col[:last]
	h.pos = h.pos[:last]
	h.end = h.end[:last]
	if last > 0 {
		h.siftDown()
	}
}

func (h *simHeap) swap(i, j int) {
	h.col[i], h.col[j] = h.col[j], h.col[i]
	h.pos[i], h.pos[j] = h.pos[j], h.pos[i]
	h.end[i], h.end[j] = h.end[j], h.end[i]
}

func (h *simHeap) siftDown() {
	i, n := 0, len(h.col)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && h.col[r] < h.col[l] {
			small = r
		}
		if h.col[i] <= h.col[small] {
			return
		}
		h.swap(i, small)
		i = small
	}
}
