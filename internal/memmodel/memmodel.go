// Package memmodel reproduces the memory-system side of the paper: the
// stanza-access bandwidth microbenchmark of Figure 5 and, since no MCDRAM
// hardware is available here, an analytical two-tier bandwidth model that
// predicts the MCDRAM-vs-DDR speedups of Figure 10 from SpGEMM access
// statistics.
//
// The model is the classic latency-bandwidth pipe: fetching a stanza of L
// contiguous bytes from a random location costs latency + L/peak, so
// effective bandwidth is BW(L) = L / (latency + L/peak) — small stanzas are
// latency-bound (tiers look identical or worse for the higher-latency tier),
// large stanzas approach peak (where MCDRAM's 3.4× higher peak shows). The
// DDR tier is fitted to bandwidth measured on the host; the MCDRAM tier is
// derived from it with the paper's published ratios (≈3.4× peak bandwidth,
// higher latency).
package memmodel

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/spgemm"
)

// Tier models one memory technology as a latency-bandwidth pipe.
type Tier struct {
	Name      string
	PeakGBps  float64 // asymptotic streaming bandwidth
	LatencyNs float64 // per-stanza startup cost
}

// Bandwidth returns the effective bandwidth in GB/s when reading stanzas of
// the given length from random locations.
func (t Tier) Bandwidth(stanzaBytes float64) float64 {
	if stanzaBytes <= 0 {
		return 0
	}
	seconds := t.LatencyNs*1e-9 + stanzaBytes/(t.PeakGBps*1e9)
	return stanzaBytes / seconds / 1e9
}

// TimeFor returns the seconds needed to move the given bytes at the given
// stanza granularity.
func (t Tier) TimeFor(bytes, stanzaBytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / (t.Bandwidth(stanzaBytes) * 1e9)
}

// MCDRAMRatios are the published characteristics of KNL's MCDRAM in Cache
// mode relative to DDR4: ≳3.4× streaming bandwidth (paper's Figure 5
// measurement) at somewhat higher latency. The 1.1 latency ratio reflects
// Cache mode, where a hit avoids the DDR round trip entirely and only the
// tag check adds to latency (Flat-mode MCDRAM latency is ~1.3× DDR).
const (
	MCDRAMPeakRatio    = 3.4
	MCDRAMLatencyRatio = 1.1
)

// MCDRAMFrom derives the modeled MCDRAM tier from a fitted DDR tier.
func MCDRAMFrom(ddr Tier) Tier {
	return Tier{
		Name:      "MCDRAM (modeled)",
		PeakGBps:  ddr.PeakGBps * MCDRAMPeakRatio,
		LatencyNs: ddr.LatencyNs * MCDRAMLatencyRatio,
	}
}

// StanzaResult is one point of the Figure 5 curve.
type StanzaResult struct {
	StanzaBytes int
	GBps        float64
}

// MeasureStanzaBandwidth measures read bandwidth for stanza-granular random
// access over a working set of arrayBytes (which should exceed the last-
// level cache): for each requested stanza length it reads contiguous runs
// of that length starting at random positions until minDuration elapses.
func MeasureStanzaBandwidth(arrayBytes int, stanzaLengths []int, minDuration time.Duration) []StanzaResult {
	if arrayBytes < 1<<20 {
		arrayBytes = 1 << 20
	}
	words := arrayBytes / 8
	data := make([]uint64, words)
	for i := range data {
		data[i] = uint64(i)
	}
	// Pre-generate random stanza start offsets (in words).
	rng := rand.New(rand.NewSource(12345))
	const nOffsets = 1 << 14
	offsets := make([]int, nOffsets)

	results := make([]StanzaResult, 0, len(stanzaLengths))
	var sink uint64
	for _, L := range stanzaLengths {
		wordsPerStanza := L / 8
		if wordsPerStanza < 1 {
			wordsPerStanza = 1
		}
		maxStart := words - wordsPerStanza
		for i := range offsets {
			offsets[i] = rng.Intn(maxStart + 1)
		}
		var bytes int64
		start := time.Now()
		for time.Since(start) < minDuration {
			for _, off := range offsets {
				end := off + wordsPerStanza
				var s uint64
				for p := off; p < end; p++ {
					s += data[p]
				}
				sink += s
			}
			bytes += int64(nOffsets) * int64(wordsPerStanza) * 8
		}
		elapsed := time.Since(start).Seconds()
		results = append(results, StanzaResult{
			StanzaBytes: wordsPerStanza * 8,
			GBps:        float64(bytes) / elapsed / 1e9,
		})
	}
	sinkWord = sink
	return results
}

// sinkWord defeats dead-code elimination of the measurement loops.
var sinkWord uint64

// FitTier fits the latency-bandwidth pipe to measured stanza results by
// linear regression of per-stanza time against stanza length: time(L) =
// latency + L/peak.
func FitTier(name string, results []StanzaResult) (Tier, error) {
	if len(results) < 2 {
		return Tier{}, fmt.Errorf("memmodel: need at least 2 points to fit, got %d", len(results))
	}
	// x = L bytes, y = seconds per stanza.
	var sx, sy, sxx, sxy float64
	n := float64(len(results))
	for _, r := range results {
		x := float64(r.StanzaBytes)
		y := x / (r.GBps * 1e9)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return Tier{}, fmt.Errorf("memmodel: degenerate fit (all stanza lengths equal)")
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n
	if slope <= 0 {
		return Tier{}, fmt.Errorf("memmodel: non-physical fit (slope %g <= 0)", slope)
	}
	if intercept < 0 {
		intercept = 0
	}
	return Tier{Name: name, PeakGBps: 1 / slope / 1e9, LatencyNs: intercept * 1e9}, nil
}

// DefaultDDR is a representative DDR4 tier used when measurement is skipped:
// ~90 GB/s peak (KNL's 6-channel DDR4), ~120 ns access latency.
var DefaultDDR = Tier{Name: "DDR4 (default)", PeakGBps: 90, LatencyNs: 120}

// computeNsPerFlop is the tier-independent per-product compute cost (hash,
// probe, multiply-add) used by ModeledTimeWithSim: ~2 ns per intermediate
// product on a 1.4 GHz KNL core.
const computeNsPerFlop = 2.0

// AccessProfile says how an algorithm's B-row traffic hits memory.
type AccessProfile int

const (
	// StanzaReads models the hash-family algorithms, which read each
	// contributing row of B as one contiguous stanza.
	StanzaReads AccessProfile = iota
	// FineGrained models the heap algorithm, whose k-way merge advances
	// one element at a time through k rows simultaneously, so each B
	// access is an isolated fine-grained read. This is why "Heap SpGEMM
	// is not benefitted from high-bandwidth MCDRAM" in Figure 10.
	FineGrained
)

// ModeledTime predicts the memory time (seconds) of one SpGEMM execution
// with the given access statistics on the given tier.
func ModeledTime(st spgemm.AccessStats, tier Tier, profile AccessProfile) float64 {
	var t float64
	// B-row traffic.
	if profile == FineGrained {
		var bytes float64
		for _, b := range st.StanzaBytes {
			bytes += float64(b)
		}
		t += tier.TimeFor(bytes, 12) // one 12-byte entry per access
	} else {
		for k, b := range st.StanzaBytes {
			if b == 0 {
				continue
			}
			mid := float64(int64(3)<<uint(k)) / 2
			t += tier.TimeFor(float64(b), mid)
		}
	}
	// Streaming traffic approaches peak bandwidth (very long stanzas).
	t += tier.TimeFor(float64(st.StreamBytes), 1<<20)
	// Accumulator traffic: 8-byte random updates. The paper's hash tables
	// are thread-private and sized to one row's flop, so they are almost
	// entirely cache-resident; only a small fraction (1/64 here) of
	// accumulator updates reach memory. With a larger spill factor the
	// latency-bound accumulator term swamps the stanza term and no
	// workload would ever benefit from MCDRAM — contradicting the paper's
	// measured Figure 10.
	t += tier.TimeFor(float64(st.RandomBytes)/64, 8)
	return t
}

// ModeledSpeedup predicts Figure 10's quantity: time on DDR divided by time
// with MCDRAM for the same access statistics.
func ModeledSpeedup(st spgemm.AccessStats, ddr, mcdram Tier, profile AccessProfile) float64 {
	td := ModeledTime(st, ddr, profile)
	tm := ModeledTime(st, mcdram, profile)
	if tm == 0 {
		return 1
	}
	return td / tm
}

// ModeledTimeWithSim is ModeledTime with the memory traffic taken from a
// cache-simulator replay instead of fixed constants: every simulated miss
// fetches one cache line, and the sampled replay is scaled to the full
// workload by the flop sampling fraction.
func ModeledTimeWithSim(st spgemm.AccessStats, sim SimStats, tier Tier, profile AccessProfile) float64 {
	line := float64(sim.LineBytes)
	if line <= 0 {
		line = 64
	}
	scale := 1.0
	if sim.SampledFlop > 0 && st.Flop > sim.SampledFlop {
		scale = float64(st.Flop) / float64(sim.SampledFlop)
	}
	bMemBytes := float64(sim.BMisses) * line * scale
	accMemBytes := float64(sim.AccMisses) * line * scale

	var t float64
	if profile == FineGrained {
		// The heap's merge touches one element per access, so every miss
		// is an isolated line fetch: latency paid per line.
		t += tier.TimeFor(bMemBytes, line)
	} else {
		// Distribute the miss traffic over the stanza-length histogram;
		// a contiguous stanza amortizes latency over its whole length,
		// but never over less than one line.
		var totalStanza float64
		for _, b := range st.StanzaBytes {
			totalStanza += float64(b)
		}
		if totalStanza > 0 {
			for k, b := range st.StanzaBytes {
				if b == 0 {
					continue
				}
				mid := float64(int64(3)<<uint(k)) / 2
				if mid < line {
					mid = line
				}
				t += tier.TimeFor(bMemBytes*float64(b)/totalStanza, mid)
			}
		}
	}
	t += tier.TimeFor(float64(st.StreamBytes), 1<<20)
	// Accumulator misses are isolated line fetches.
	t += tier.TimeFor(accMemBytes, line)
	// Tier-independent compute: hashing, probing and FMA work per
	// intermediate product. Without it the model predicts memory-ratio
	// speedups even for compute-bound (sparse, cache-resident) workloads,
	// which contradicts the paper's near-1 speedups at low edge factors.
	t += float64(st.Flop) * computeNsPerFlop * 1e-9
	return t
}

// ModeledSpeedupWithSim is ModeledSpeedup using simulated cache behaviour.
func ModeledSpeedupWithSim(st spgemm.AccessStats, sim SimStats, ddr, mcdram Tier, profile AccessProfile) float64 {
	td := ModeledTimeWithSim(st, sim, ddr, profile)
	tm := ModeledTimeWithSim(st, sim, mcdram, profile)
	if tm == 0 {
		return 1
	}
	return td / tm
}
