package memmodel

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/spgemm"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if c.Access(0) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0) {
		t.Fatal("second access should hit")
	}
	if !c.Access(63) {
		t.Fatal("same line should hit")
	}
	if c.Access(64) {
		t.Fatal("next line should miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate %v", c.MissRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache with 8 sets of 64B lines: addresses 0, 1024, 2048 all map
	// to set 0 (line numbers 0, 16, 32; 16 mod 8 = 0...). Line = addr/64;
	// set = line mod 8. Lines 0, 8, 16 → addresses 0, 512, 1024.
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	c.Access(0)    // set 0: [0]
	c.Access(512)  // set 0: [8, 0]
	c.Access(1024) // evicts LRU (line 0): [16, 8]
	if c.Access(0) {
		t.Fatal("line 0 should have been evicted (LRU)")
	}
	// Line 8 must still be resident (it was MRU before the eviction).
	// After the miss on 0, set is [0, 16]; line 8 was evicted by 0's fill.
	// Touch 16: should hit.
	if !c.Access(1024) {
		t.Fatal("line 16 should be resident")
	}
}

func TestCacheLRUOrderingUpdatedOnHit(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	c.Access(0)   // [0]
	c.Access(512) // [8, 0]
	c.Access(0)   // hit: [0, 8]
	c.Access(1024)
	// Eviction should remove line 8 (LRU), keeping 0.
	if !c.Access(0) {
		t.Fatal("recently-used line 0 must survive eviction")
	}
	if c.Access(512) {
		t.Fatal("line 8 should have been evicted")
	}
}

func TestCacheSequentialStreamMissRate(t *testing.T) {
	// Streaming 4-byte accesses over a range far exceeding the cache: one
	// miss per 64-byte line → miss rate 1/16.
	c := NewCache(CacheConfig{SizeBytes: 1 << 14, LineBytes: 64, Ways: 4})
	for addr := uint64(0); addr < 1<<20; addr += 4 {
		c.Access(addr)
	}
	got := c.MissRate()
	if got < 0.05 || got > 0.08 {
		t.Fatalf("streaming miss rate %v, want ≈1/16", got)
	}
}

func TestCacheBadConfigPanics(t *testing.T) {
	for _, cfg := range []CacheConfig{
		{SizeBytes: 1024, LineBytes: 60, Ways: 2}, // non-pow2 line
		{SizeBytes: 1024, LineBytes: 64, Ways: 3}, // lines not divisible
		{SizeBytes: 1 << 10, LineBytes: 64, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v: expected panic", cfg)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestSimulateHashSpGEMMSmallMatrixStaysResident(t *testing.T) {
	// A tiny working set must be nearly all hits after warmup: spill ≈ 0.
	rng := rand.New(rand.NewSource(501))
	a := matrix.RandomWithDegree(200, 200, 8, rng)
	st := SimulateHashSpGEMM(a, a, KNLTileL2, 0)
	if st.SampledRows == 0 || st.AccAccesses == 0 {
		t.Fatalf("nothing simulated: %+v", st)
	}
	if spill := st.AccumulatorSpill(); spill > 0.1 {
		t.Fatalf("small-matrix accumulator spill %v, want ≈0", spill)
	}
	if miss := st.BMissRate(); miss > 0.2 {
		t.Fatalf("small-matrix B miss rate %v, want low", miss)
	}
}

func TestSimulateHashSpGEMMLargeMatrixMisses(t *testing.T) {
	// B far exceeding the cache: B reads must miss substantially more than
	// in the small case.
	rng := rand.New(rand.NewSource(502))
	small := matrix.RandomWithDegree(200, 200, 8, rng)
	big := gen.RMAT(14, 8, gen.ERParams, rng)
	sSmall := SimulateHashSpGEMM(small, small, KNLTileL2, 1<<20)
	sBig := SimulateHashSpGEMM(big, big, KNLTileL2, 1<<20)
	if sBig.BMissRate() <= sSmall.BMissRate() {
		t.Fatalf("big-matrix B miss rate %v not above small %v", sBig.BMissRate(), sSmall.BMissRate())
	}
}

func TestSimulateHeapSpGEMMFineGrainedPattern(t *testing.T) {
	// The heap replay interleaves cursors across the contributing rows of
	// B, so on a matrix whose B exceeds the cache it must miss at least as
	// often as the hash replay, which streams each row in one run — the
	// access-pattern difference behind Figure 10's heap curve.
	rng := rand.New(rand.NewSource(505))
	big := gen.RMAT(14, 8, gen.ERParams, rng)
	hash := SimulateHashSpGEMM(big, big, KNLTileL2, 1<<20)
	heap := SimulateHeapSpGEMM(big, big, KNLTileL2, 1<<20)
	if heap.SampledFlop == 0 || heap.BAccesses == 0 {
		t.Fatalf("heap replay empty: %+v", heap)
	}
	if heap.LineBytes != KNLTileL2.LineBytes {
		t.Fatalf("LineBytes = %d", heap.LineBytes)
	}
	// Both replays must see real misses on an out-of-cache B. The rates
	// are not directly comparable (the hash replay's table competes for
	// the same cache; the heap's penalty is latency exposure, which the
	// FineGrained time model captures, not the miss count).
	if heap.BMissRate() <= 0 || heap.BMissRate() > 1 {
		t.Fatalf("heap miss rate %v out of range", heap.BMissRate())
	}
	if hash.BMissRate() <= 0 {
		t.Fatalf("hash miss rate %v should be positive on out-of-cache B", hash.BMissRate())
	}
	// The heap replay counts one accumulator op per product.
	if heap.AccAccesses != heap.SampledFlop {
		t.Fatalf("AccAccesses %d != SampledFlop %d", heap.AccAccesses, heap.SampledFlop)
	}
}

func TestSimulateHeapBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(506))
	a := gen.RMAT(12, 16, gen.G500Params, rng)
	st := SimulateHeapSpGEMM(a, a, KNLTileL2, 5_000)
	if st.SampledFlop > 6_000 {
		t.Fatalf("replayed %d, budget 5k", st.SampledFlop)
	}
	if st.SampledRows >= a.Rows {
		t.Fatal("expected stride sampling")
	}
}

func TestSimStatsDegenerate(t *testing.T) {
	var s SimStats
	if s.AccumulatorSpill() != 0 || s.BMissRate() != 0 {
		t.Fatal("zero-access stats must report zero rates")
	}
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if c.MissRate() != 0 {
		t.Fatal("fresh cache must report zero miss rate")
	}
}

func TestSimulateRespectsFlopBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	a := gen.RMAT(12, 16, gen.G500Params, rng)
	st := SimulateHashSpGEMM(a, a, KNLTileL2, 10_000)
	if st.AccAccesses > 3*10_000 {
		t.Fatalf("replayed %d products, budget 10k (stride sampling broken)", st.AccAccesses)
	}
	if st.SampledRows >= a.Rows {
		t.Fatal("expected stride sampling to skip rows")
	}
}

func TestModeledTimeWithSimConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	a := gen.RMAT(11, 16, gen.G500Params, rng)
	st := SimulateHashSpGEMM(a, a, KNLTileL2, 1<<20)
	ast := spgemm.CollectAccessStats(a, a, 0)
	ddr := DefaultDDR
	mc := MCDRAMFrom(ddr)
	tSim := ModeledTimeWithSim(ast, st, ddr, StanzaReads)
	tConst := ModeledTime(ast, ddr, StanzaReads)
	if tSim <= 0 || tConst <= 0 {
		t.Fatal("non-positive modeled times")
	}
	sp := ModeledSpeedupWithSim(ast, st, ddr, mc, StanzaReads)
	if sp < 0.5 || sp > MCDRAMPeakRatio {
		t.Fatalf("sim-based speedup %v outside plausible band", sp)
	}
}
