package memmodel

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/spgemm"
)

func TestTierBandwidthShape(t *testing.T) {
	tier := Tier{Name: "x", PeakGBps: 100, LatencyNs: 100}
	// Monotone increasing in stanza length.
	prev := 0.0
	for _, l := range []float64{8, 64, 512, 4096, 1 << 20} {
		bw := tier.Bandwidth(l)
		if bw <= prev {
			t.Fatalf("bandwidth not increasing at %v: %v <= %v", l, bw, prev)
		}
		prev = bw
	}
	// Saturates near peak for huge stanzas.
	if bw := tier.Bandwidth(1 << 30); bw < 99 || bw > 100 {
		t.Fatalf("asymptotic bandwidth %v, want ≈100", bw)
	}
	// Latency-bound for tiny stanzas: 8B / 100ns = 0.08 GB/s.
	if bw := tier.Bandwidth(8); math.Abs(bw-0.0799) > 0.01 {
		t.Fatalf("8B bandwidth %v, want ≈0.08", bw)
	}
	if tier.Bandwidth(0) != 0 {
		t.Fatal("zero stanza must give zero bandwidth")
	}
}

func TestTierTimeFor(t *testing.T) {
	tier := Tier{PeakGBps: 10, LatencyNs: 0}
	// 10 GB at 10 GB/s = 1 s.
	if got := tier.TimeFor(10e9, 1<<20); math.Abs(got-1) > 0.01 {
		t.Fatalf("TimeFor = %v, want ≈1", got)
	}
	if tier.TimeFor(0, 64) != 0 {
		t.Fatal("zero bytes must cost zero time")
	}
}

func TestMCDRAMFromRatios(t *testing.T) {
	ddr := Tier{Name: "ddr", PeakGBps: 90, LatencyNs: 120}
	mc := MCDRAMFrom(ddr)
	if mc.PeakGBps != 90*MCDRAMPeakRatio || mc.LatencyNs != 120*MCDRAMLatencyRatio {
		t.Fatalf("mcdram = %+v", mc)
	}
	// The crossover property of Figure 5: MCDRAM worse or equal at tiny
	// stanzas, much better at large ones.
	if mc.Bandwidth(8) > ddr.Bandwidth(8) {
		t.Fatal("MCDRAM should not beat DDR at 8-byte stanzas (latency-bound)")
	}
	if mc.Bandwidth(1<<20) < 3*ddr.Bandwidth(1<<20) {
		t.Fatal("MCDRAM should approach 3.4x at streaming sizes")
	}
}

func TestFitTierRecoversSyntheticTier(t *testing.T) {
	truth := Tier{PeakGBps: 50, LatencyNs: 200}
	var results []StanzaResult
	for _, l := range []int{16, 64, 256, 1024, 4096, 16384} {
		results = append(results, StanzaResult{StanzaBytes: l, GBps: truth.Bandwidth(float64(l))})
	}
	fit, err := FitTier("fit", results)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.PeakGBps-50) > 1 {
		t.Fatalf("peak = %v, want 50", fit.PeakGBps)
	}
	if math.Abs(fit.LatencyNs-200) > 5 {
		t.Fatalf("latency = %v, want 200", fit.LatencyNs)
	}
}

func TestFitTierErrors(t *testing.T) {
	if _, err := FitTier("x", nil); err == nil {
		t.Fatal("expected error with no points")
	}
	same := []StanzaResult{{64, 1}, {64, 2}}
	if _, err := FitTier("x", same); err == nil {
		t.Fatal("expected degenerate-fit error")
	}
}

func TestMeasureStanzaBandwidthRunsAndRises(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement skipped in -short")
	}
	results := MeasureStanzaBandwidth(1<<22, []int{8, 4096}, 20*time.Millisecond)
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	for _, r := range results {
		if r.GBps <= 0 {
			t.Fatalf("non-positive bandwidth: %+v", r)
		}
	}
	// Longer stanzas must deliver more bandwidth (the Figure 5 shape).
	if results[1].GBps <= results[0].GBps {
		t.Fatalf("4KiB stanza (%v GB/s) not faster than 8B (%v GB/s)", results[1].GBps, results[0].GBps)
	}
}

func TestModeledSpeedupReproducesFigure10Shape(t *testing.T) {
	ddr := DefaultDDR
	mc := MCDRAMFrom(ddr)
	rng := rand.New(rand.NewSource(401))
	sparse := gen.RMAT(12, 4, gen.G500Params, rng)
	dense := gen.RMAT(12, 32, gen.G500Params, rng)
	stSparse := spgemm.CollectAccessStats(sparse, sparse, 0)
	stDense := spgemm.CollectAccessStats(dense, dense, 0)

	// Hash on dense matrices benefits more than on sparse (Figure 10's
	// rising curves).
	spSparse := ModeledSpeedup(stSparse, ddr, mc, StanzaReads)
	spDense := ModeledSpeedup(stDense, ddr, mc, StanzaReads)
	if spDense <= spSparse {
		t.Fatalf("dense speedup %v should exceed sparse %v", spDense, spSparse)
	}
	// Heap (fine-grained) gains little or even degrades.
	heapSp := ModeledSpeedup(stDense, ddr, mc, FineGrained)
	if heapSp > 1.1 {
		t.Fatalf("heap modeled speedup %v should be ≈1 or below", heapSp)
	}
	if heapSp >= spDense {
		t.Fatal("heap should benefit less than hash on dense inputs")
	}
	// All speedups in a plausible Figure 10 band.
	for _, s := range []float64{spSparse, spDense, heapSp} {
		if s < 0.5 || s > MCDRAMPeakRatio {
			t.Fatalf("speedup %v outside plausible band", s)
		}
	}
}

func TestModeledTimePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	a := gen.ER(8, 4, rng)
	st := spgemm.CollectAccessStats(a, a, 0)
	if ModeledTime(st, DefaultDDR, StanzaReads) <= 0 {
		t.Fatal("modeled time must be positive")
	}
	if ModeledTime(st, DefaultDDR, FineGrained) <= 0 {
		t.Fatal("modeled time must be positive")
	}
}
