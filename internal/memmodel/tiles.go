package memmodel

import (
	"os"
	"strconv"
	"strings"

	"repro/internal/spgemm"
)

// Tile-geometry feed: memmodel owns the machine model (tiers, cache
// geometry), spgemm owns the kernels, and the import runs memmodel→spgemm,
// so the cache parameters the tiled kernels size their accumulators from are
// pushed into spgemm here rather than pulled (which would cycle the
// imports). Any binary that links memmodel gets analytic tile widths at
// init; binaries that don't fall back to spgemm's legacy constant.

// CacheParamsFrom derives the tiled kernels' cache parameters from a memory
// tier and a cache geometry. The L2 capacity bounds the accumulator working
// set; the minimum tile width comes from the tier's latency-bandwidth
// product — the bytes that must be in flight to keep the memory pipe busy —
// so that per-tile row stanzas of B stay bandwidth-bound rather than
// latency-bound (each CSR entry is an int32 column plus a float64 value,
// 12 bytes).
func CacheParamsFrom(t Tier, c CacheConfig) spgemm.CacheParams {
	const entryBytes = 12
	inFlight := t.PeakGBps * t.LatencyNs // GB/s × ns = bytes
	min := ceilPow2(int(inFlight) / entryBytes)
	if min < 256 {
		min = 256
	}
	if min > 1<<16 {
		min = 1 << 16
	}
	return spgemm.CacheParams{
		L2Bytes:     c.SizeBytes,
		LineBytes:   c.LineBytes,
		MinTileCols: min,
		TierFitted:  true,
		Source:      t.Name,
	}
}

// InstallCacheParams derives and installs the parameters into spgemm.
func InstallCacheParams(t Tier, c CacheConfig) {
	spgemm.SetCacheParams(CacheParamsFrom(t, c))
}

// init installs the deterministic default: the KNL per-tile L2 slice (the
// cache level the paper sizes its accumulators for) with the DDR tier's
// latency-bandwidth floor. Deliberately NOT the host's detected L2 — the
// benchmark snapshots in CI must reproduce the same tile geometry on every
// machine. Hosts that want native geometry call InstallHostCacheParams
// explicitly (opt-in).
func init() {
	InstallCacheParams(DefaultDDR, KNLTileL2)
}

// DetectL2Bytes reads the host's per-core L2 capacity from sysfs. Returns
// false when the hierarchy is not exposed (non-Linux, restricted container).
func DetectL2Bytes() (int, bool) {
	data, err := os.ReadFile("/sys/devices/system/cpu/cpu0/cache/index2/size")
	if err != nil {
		return 0, false
	}
	s := strings.TrimSpace(string(data))
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1024, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n * mult, true
}

// InstallHostCacheParams re-derives the tile geometry from the host's
// detected L2 (keeping the given tier's latency-bandwidth floor) and
// installs it. Reports whether detection succeeded; on failure nothing
// changes. Opt-in precisely because it makes tile widths machine-dependent.
func InstallHostCacheParams(t Tier) bool {
	l2, ok := DetectL2Bytes()
	if !ok {
		return false
	}
	c := KNLTileL2
	c.SizeBytes = l2
	p := CacheParamsFrom(t, c)
	p.Source = t.Name + "+host-l2"
	spgemm.SetCacheParams(p)
	return true
}

// ceilPow2 returns the smallest power of two ≥ n (minimum 1).
func ceilPow2(n int) int {
	w := 1
	for w < n && w > 0 {
		w <<= 1
	}
	return w
}
