package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPlusTimesBasics(t *testing.T) {
	s := PlusTimes()
	if s.Add(2, 3) != 5 || s.Mul(2, 3) != 6 || s.Zero != 0 {
		t.Fatal("plus-times wrong")
	}
}

func TestOrAndTruthTable(t *testing.T) {
	s := OrAnd()
	cases := []struct{ a, b, or, and float64 }{
		{0, 0, 0, 0},
		{0, 1, 1, 0},
		{1, 0, 1, 0},
		{1, 1, 1, 1},
		{0.5, 2, 1, 1}, // any nonzero is true
	}
	for _, c := range cases {
		if got := s.Add(c.a, c.b); got != c.or {
			t.Fatalf("Add(%v,%v)=%v want %v", c.a, c.b, got, c.or)
		}
		if got := s.Mul(c.a, c.b); got != c.and {
			t.Fatalf("Mul(%v,%v)=%v want %v", c.a, c.b, got, c.and)
		}
	}
}

func TestMinPlusIdentityAndOps(t *testing.T) {
	s := MinPlus()
	if !math.IsInf(s.Zero, 1) {
		t.Fatal("min-plus identity must be +Inf")
	}
	if s.Add(3, 5) != 3 || s.Mul(3, 5) != 8 {
		t.Fatal("min-plus ops wrong")
	}
	if s.Add(7, s.Zero) != 7 {
		t.Fatal("Add(x, Zero) != x")
	}
}

func TestMaxTimes(t *testing.T) {
	s := MaxTimes()
	if s.Add(3, 5) != 5 || s.Mul(3, 5) != 15 || s.Zero != 0 {
		t.Fatal("max-times wrong")
	}
}

// Semiring laws (on non-negative values where applicable): Add associative
// and commutative, Zero is the Add identity, Mul distributes over Add for
// the rings where that holds exactly (plus-times with exact values excluded
// due to float rounding — checked with tolerance).
func TestSemiringLaws(t *testing.T) {
	rings := []*Semiring{PlusTimes(), OrAnd(), MinPlus(), MaxTimes()}
	for _, s := range rings {
		s := s
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			lim := 10
			if s.Name == "or-and" {
				// The float encoding of booleans only forms a semiring on
				// the carrier {0, 1}.
				lim = 2
			}
			a := float64(rng.Intn(lim))
			b := float64(rng.Intn(lim))
			c := float64(rng.Intn(lim))
			// Commutativity and associativity of Add.
			if s.Add(a, b) != s.Add(b, a) {
				return false
			}
			if s.Add(s.Add(a, b), c) != s.Add(a, s.Add(b, c)) {
				return false
			}
			// Identity.
			if s.Add(a, s.Zero) != a {
				return false
			}
			// Distributivity: a*(b+c) == a*b + a*c (exact on small ints).
			left := s.Mul(a, s.Add(b, c))
			right := s.Add(s.Mul(a, b), s.Mul(a, c))
			return left == right || (math.IsInf(left, 1) && math.IsInf(right, 1))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}
