package semiring

import "math"

var inf = math.Inf(1)

// This file is the generic (compile-time) side of the package: Ring[V] is the
// constraint-style interface the generic kernels are parameterized over, and
// the concrete rings below are zero-size types whose Add/Mul/Zero methods
// inline into the kernel inner loops. The func-pointer Semiring type survives
// only behind the Func adapter.

// Value is the set of element types the generic matrix / accumulator / kernel
// layer supports. The list is exact (no ~ terms) on purpose: helpers such as
// the duplicate-merging in matrix.Compact dispatch on the dynamic type of *V,
// and an exact type set keeps that dispatch total.
type Value interface {
	bool | int | int32 | int64 | uint32 | uint64 | float32 | float64
}

// Ring is a semiring over V presented as a (usually zero-size) value type.
// Kernels take R as a type parameter constrained by Ring[V], so Add and Mul
// are resolved at compile time and inline — no func-pointer call per
// multiply-add, which is the entire point of this layer.
//
// Zero is the additive identity: Add(x, Zero()) == x for all stored x.
// Kernels must not assume Zero() is the machine zero of V (MinPlusF64 has
// Zero() == +Inf); an output entry exists iff at least one product landed on
// it, never because its value compares equal to Zero().
type Ring[V any] interface {
	Add(a, b V) V
	Mul(a, b V) V
	Zero() V
}

// Every concrete ring below embeds a zero-size array of a uniquely named
// zero-size type. This gives each ring a DISTINCT underlying type, which
// keeps Go's GC-shape stenciling from collapsing them into one shared
// dictionary-based instantiation: each kernel×ring pair compiles separately
// and the ring methods devirtualize and inline.
type (
	tagPlusTimesF64 struct{}
	tagPlusTimesF32 struct{}
	tagPlusTimesI64 struct{}
	tagOrAndBool    struct{}
	tagMinPlusF64   struct{}
	tagMaxTimesF64  struct{}
)

// PlusTimesF64 is ordinary float64 arithmetic — the semiring of numerical
// linear algebra and the default instantiation of every kernel.
type PlusTimesF64 struct{ _ [0]tagPlusTimesF64 }

func (PlusTimesF64) Add(a, b float64) float64 { return a + b }
func (PlusTimesF64) Mul(a, b float64) float64 { return a * b }
func (PlusTimesF64) Zero() float64            { return 0 }
func (PlusTimesF64) String() string           { return "plus-times<f64>" }

// PlusTimesF32 is ordinary float32 arithmetic. Halves the value-stream
// bandwidth of the numeric phase relative to float64.
type PlusTimesF32 struct{ _ [0]tagPlusTimesF32 }

func (PlusTimesF32) Add(a, b float32) float32 { return a + b }
func (PlusTimesF32) Mul(a, b float32) float32 { return a * b }
func (PlusTimesF32) Zero() float32            { return 0 }
func (PlusTimesF32) String() string           { return "plus-times<f32>" }

// PlusTimesI64 is integer plus-times; exact counting (triangle counting,
// path counting) with no rounding concerns.
type PlusTimesI64 struct{ _ [0]tagPlusTimesI64 }

func (PlusTimesI64) Add(a, b int64) int64 { return a + b }
func (PlusTimesI64) Mul(a, b int64) int64 { return a * b }
func (PlusTimesI64) Zero() int64          { return 0 }
func (PlusTimesI64) String() string       { return "plus-times<i64>" }

// OrAndBool is the boolean semiring over real bools: one byte per stored
// value instead of the eight the legacy 0/1-in-float64 encoding pays.
// Reachability-style algorithms (multi-source BFS) run over this ring.
type OrAndBool struct{ _ [0]tagOrAndBool }

func (OrAndBool) Add(a, b bool) bool { return a || b }
func (OrAndBool) Mul(a, b bool) bool { return a && b }
func (OrAndBool) Zero() bool         { return false }
func (OrAndBool) String() string     { return "or-and<bool>" }

// MinPlusF64 is the tropical semiring (shortest paths): Add is min, Mul is +,
// and the additive identity is +Inf. The non-machine-zero identity makes it
// the canonical stress test for kernels that confuse "value is Zero" with
// "entry absent".
type MinPlusF64 struct{ _ [0]tagMinPlusF64 }

func (MinPlusF64) Add(a, b float64) float64 {
	// Branch rather than math.Min: no NaN/±0 special-casing, so it inlines.
	if a < b {
		return a
	}
	return b
}
func (MinPlusF64) Mul(a, b float64) float64 { return a + b }
func (MinPlusF64) Zero() float64            { return inf }
func (MinPlusF64) String() string           { return "min-plus<f64>" }

// MaxTimesF64 selects the strongest product path: Add is max, Mul is ×,
// identity 0 (for non-negative weights).
type MaxTimesF64 struct{ _ [0]tagMaxTimesF64 }

func (MaxTimesF64) Add(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func (MaxTimesF64) Mul(a, b float64) float64 { return a * b }
func (MaxTimesF64) Zero() float64            { return 0 }
func (MaxTimesF64) String() string           { return "max-times<f64>" }

// Func adapts the legacy func-pointer *Semiring to Ring[float64]. This is
// the one place an indirect call per multiply-add survives; every shipped
// ring above monomorphizes instead. Options.Semiring routes through it, so
// existing callers keep working at their old (slow-path) cost.
type Func struct{ S *Semiring }

func (f Func) Add(a, b float64) float64 { return f.S.Add(a, b) }
func (f Func) Mul(a, b float64) float64 { return f.S.Mul(a, b) }
func (f Func) Zero() float64            { return f.S.Zero }
func (f Func) String() string           { return f.S.Name + "<func>" }
