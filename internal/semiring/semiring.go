// Package semiring defines the algebraic structures SpGEMM can run over.
//
// The paper's SpGEMM kernels compute over the ordinary (+, ×) arithmetic
// semiring, but the graph applications it motivates — multi-source BFS,
// triangle counting, Markov clustering — are SpGEMM over other semirings
// (boolean or-and, tropical min-plus). The accumulators in this repository
// accept a Semiring so the same kernels serve both worlds; a nil Semiring
// selects a specialized plus-times fast path.
package semiring

import "math"

// Semiring packages the two binary operations and the additive identity of a
// semiring over float64. Mul combines a stored A value with a stored B value;
// Add merges intermediate products landing on the same output entry.
type Semiring struct {
	Name string
	Add  func(a, b float64) float64
	Mul  func(a, b float64) float64
	// Zero is the additive identity: Add(x, Zero) == x. Accumulators
	// initialize entries with Zero.
	Zero float64
}

// PlusTimes is ordinary arithmetic: the semiring of numerical linear algebra.
func PlusTimes() *Semiring {
	return &Semiring{
		Name: "plus-times",
		Add:  func(a, b float64) float64 { return a + b },
		Mul:  func(a, b float64) float64 { return a * b },
		Zero: 0,
	}
}

// OrAnd is the boolean semiring with 0/1 encoded as float64. Any nonzero is
// treated as true. Used by reachability-style algorithms (multi-source BFS).
func OrAnd() *Semiring {
	return &Semiring{
		Name: "or-and",
		Add: func(a, b float64) float64 {
			if a != 0 || b != 0 {
				return 1
			}
			return 0
		},
		Mul: func(a, b float64) float64 {
			if a != 0 && b != 0 {
				return 1
			}
			return 0
		},
		Zero: 0,
	}
}

// MinPlus is the tropical semiring (shortest paths): Add is min, Mul is +,
// and the additive identity is +Inf.
func MinPlus() *Semiring {
	return &Semiring{
		Name: "min-plus",
		Add:  math.Min,
		Mul:  func(a, b float64) float64 { return a + b },
		Zero: math.Inf(1),
	}
}

// MaxTimes selects the strongest product path: Add is max, Mul is ×, identity
// is 0 (for non-negative weights). Used by Markov-clustering-style kernels.
func MaxTimes() *Semiring {
	return &Semiring{
		Name: "max-times",
		Add:  math.Max,
		Mul:  func(a, b float64) float64 { return a * b },
		Zero: 0,
	}
}
