// Package core is the entry point to the paper's primary contribution — the
// optimized shared-memory SpGEMM kernels. It is a thin facade over
// internal/spgemm (where the implementations live, one file per algorithm
// family) so that callers who just want "multiply two sparse matrices well"
// have a single small surface:
//
//	c, err := core.Multiply(a, b, &core.Options{Algorithm: core.AlgAuto})
//
// See internal/spgemm for algorithm documentation and DESIGN.md for how each
// algorithm maps onto the paper.
package core

import (
	"repro/internal/matrix"
	"repro/internal/semiring"
	"repro/internal/spgemm"
)

// Re-exported types.
type (
	// Options configures a multiplication; the zero value is a good default.
	Options = spgemm.Options
	// Algorithm selects the SpGEMM implementation.
	Algorithm = spgemm.Algorithm
	// HeapVariant selects the Figure 9 scheduling/memory variant of AlgHeap.
	HeapVariant = spgemm.HeapVariant
	// UseCase classifies the multiplication scenario for the recipe.
	UseCase = spgemm.UseCase
	// ExecStats receives per-phase wall times and per-worker counters when
	// pointed to by Options.Stats.
	ExecStats = spgemm.ExecStats
	// WorkerStats is one worker's counter block inside ExecStats.
	WorkerStats = spgemm.WorkerStats
	// Phase indexes ExecStats.Phases.
	Phase = spgemm.Phase
	// Context carries reusable execution state (worker pool, accumulators,
	// scratch) across Multiply calls; see spgemm.Context.
	Context = spgemm.Context
	// Plan caches the symbolic phase of a product for repeated numeric
	// re-execution; see spgemm.Plan.
	Plan = spgemm.Plan
)

// Generic surface: multiply over any value type and semiring ring. These are
// aliases of the spgemm generics, so core.Multiply above is exactly
// core.MultiplyRing with the plus-times float64 ring.
type (
	// CSR is the generic CSR matrix over value type V.
	CSR[V semiring.Value] = matrix.CSRG[V]
	// OptionsG configures MultiplyRing over value type V.
	OptionsG[V semiring.Value] = spgemm.OptionsG[V]
	// ContextG is the reusable execution context over value type V.
	ContextG[V semiring.Value] = spgemm.ContextG[V]
	// Ring is the inlinable semiring contract; see semiring.Ring.
	Ring[V semiring.Value] = semiring.Ring[V]
)

// ErrPlanStale is returned by Plan.Execute when the input structure changed.
var ErrPlanStale = spgemm.ErrPlanStale

// Re-exported algorithm selectors.
const (
	AlgAuto         = spgemm.AlgAuto
	AlgHash         = spgemm.AlgHash
	AlgHashVec      = spgemm.AlgHashVec
	AlgHeap         = spgemm.AlgHeap
	AlgSPA          = spgemm.AlgSPA
	AlgMKL          = spgemm.AlgMKL
	AlgMKLInspector = spgemm.AlgMKLInspector
	AlgKokkos       = spgemm.AlgKokkos
	AlgMerge        = spgemm.AlgMerge
	AlgIKJ          = spgemm.AlgIKJ
	AlgBlockedSPA   = spgemm.AlgBlockedSPA
	AlgESC          = spgemm.AlgESC
	AlgTiled        = spgemm.AlgTiled
	AlgSharded      = spgemm.AlgSharded
)

// NewSpillSink returns a temp-file-backed shard sink that bounds resident
// output memory during an AlgSharded multiply. See spgemm.NewSpillSink.
func NewSpillSink[V semiring.Value](dir string, budget int64) *spgemm.SpillSink[V] {
	return spgemm.NewSpillSink[V](dir, budget)
}

// Re-exported use cases.
const (
	UseSquare     = spgemm.UseSquare
	UseTallSkinny = spgemm.UseTallSkinny
	UseTriangle   = spgemm.UseTriangle
)

// Multiply computes C = A·B. See spgemm.Multiply.
func Multiply(a, b *matrix.CSR, opt *Options) (*matrix.CSR, error) {
	return spgemm.Multiply(a, b, opt)
}

// MultiplyRing computes C = A·B over an arbitrary value type and semiring.
// With one of the shipped zero-size rings (semiring.PlusTimesF64,
// PlusTimesF32, OrAndBool, MinPlusF64, ...) the ring operations inline into
// each kernel's inner loop. See spgemm.MultiplyRing.
func MultiplyRing[V semiring.Value, R Ring[V]](ring R, a, b *CSR[V], opt *OptionsG[V]) (*CSR[V], error) {
	return spgemm.MultiplyRing(ring, a, b, opt)
}

// NewContextG returns an empty reusable execution context for value type V.
func NewContextG[V semiring.Value]() *ContextG[V] {
	return spgemm.NewContextG[V]()
}

// NewContext returns an empty reusable execution context. Point
// Options.Context at it and call Multiply in a loop; see spgemm.NewContext.
func NewContext() *Context {
	return spgemm.NewContext()
}

// NewPlan runs the inspector (partition + symbolic) once for C = A·B and
// returns a Plan whose Execute replays only the numeric phase while the input
// structures are unchanged. See spgemm.NewPlan.
func NewPlan(a, b *matrix.CSR, opt *Options) (*Plan, error) {
	return spgemm.NewPlan(a, b, opt)
}

// Recommend returns the paper's Table 4 recipe choice. See spgemm.Recommend.
func Recommend(a, b *matrix.CSR, sorted bool, uc UseCase) Algorithm {
	return spgemm.Recommend(a, b, sorted, uc)
}

// Flop returns the multiplication count of A·B and its per-row breakdown.
func Flop(a, b *matrix.CSR) (total int64, perRow []int64) {
	return spgemm.Flop(a, b)
}
