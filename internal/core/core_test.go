package core

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestFacadeMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := matrix.Random(20, 20, 0.2, rng)
	want := matrix.NaiveMultiply(a, a)
	for _, alg := range []Algorithm{AlgAuto, AlgHash, AlgHashVec, AlgHeap, AlgSPA, AlgMKL, AlgMKLInspector, AlgKokkos, AlgMerge, AlgIKJ} {
		got, err := Multiply(a, a, &Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !matrix.EqualApprox(want, got, 1e-10) {
			t.Fatalf("%v: wrong product through facade", alg)
		}
	}
}

func TestFacadeRecommendAndFlop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := matrix.Random(30, 30, 0.2, rng)
	for _, uc := range []UseCase{UseSquare, UseTallSkinny, UseTriangle} {
		if alg := Recommend(a, a, true, uc); alg == AlgAuto {
			t.Fatalf("%v: Recommend returned AlgAuto", uc)
		}
	}
	total, perRow := Flop(a, a)
	wantTotal, _ := matrix.Flop(a, a)
	if total != wantTotal || len(perRow) != a.Rows {
		t.Fatal("Flop facade mismatch")
	}
}
