package core

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestFacadeMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := matrix.Random(20, 20, 0.2, rng)
	want := matrix.NaiveMultiply(a, a)
	for _, alg := range []Algorithm{AlgAuto, AlgHash, AlgHashVec, AlgHeap, AlgSPA, AlgMKL, AlgMKLInspector, AlgKokkos, AlgMerge, AlgIKJ} {
		got, err := Multiply(a, a, &Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !matrix.EqualApprox(want, got, 1e-10) {
			t.Fatalf("%v: wrong product through facade", alg)
		}
	}
}

func TestFacadeContextAndPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := matrix.Random(25, 25, 0.2, rng)
	want := matrix.NaiveMultiply(a, a)

	ctx := NewContext()
	for i := 0; i < 3; i++ {
		got, err := Multiply(a, a, &Options{Algorithm: AlgHash, Context: ctx})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.EqualApprox(want, got, 1e-10) {
			t.Fatalf("round %d: wrong product through context facade", i)
		}
	}

	plan, err := NewPlan(a, a, &Options{Algorithm: AlgHash})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := plan.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.EqualApprox(want, got, 1e-10) {
			t.Fatalf("round %d: wrong product through plan facade", i)
		}
	}
	plan.Invalidate()
	if _, err := plan.Execute(); err != ErrPlanStale {
		t.Fatalf("invalidated plan: err = %v, want ErrPlanStale", err)
	}
}

func TestFacadeRecommendAndFlop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := matrix.Random(30, 30, 0.2, rng)
	for _, uc := range []UseCase{UseSquare, UseTallSkinny, UseTriangle} {
		if alg := Recommend(a, a, true, uc); alg == AlgAuto {
			t.Fatalf("%v: Recommend returned AlgAuto", uc)
		}
	}
	total, perRow := Flop(a, a)
	wantTotal, _ := matrix.Flop(a, a)
	if total != wantTotal || len(perRow) != a.Rows {
		t.Fatal("Flop facade mismatch")
	}
}
