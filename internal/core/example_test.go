package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
)

// ExampleMultiply squares a small sparse matrix with the recipe-selected
// algorithm.
func ExampleMultiply() {
	// A 3×3 upper bidiagonal matrix.
	coo := matrix.NewCOO(3, 3)
	coo.Append(0, 0, 1)
	coo.Append(0, 1, 2)
	coo.Append(1, 1, 1)
	coo.Append(1, 2, 2)
	coo.Append(2, 2, 1)
	a := coo.ToCSR()

	c, err := core.Multiply(a, a, &core.Options{Algorithm: core.AlgAuto})
	if err != nil {
		panic(err)
	}
	for i := 0; i < c.Rows; i++ {
		cols, vals := c.Row(i)
		fmt.Printf("row %d:", i)
		for j := range cols {
			fmt.Printf(" (%d)%g", cols[j], vals[j])
		}
		fmt.Println()
	}
	// Output:
	// row 0: (0)1 (1)4 (2)4
	// row 1: (1)1 (2)4
	// row 2: (2)1
}

// ExampleMultiply_unsorted shows the paper's key optimization: skipping the
// per-row sort when downstream consumers accept unsorted rows.
func ExampleMultiply_unsorted() {
	a := matrix.Identity(2)
	c, err := core.Multiply(a, a, &core.Options{
		Algorithm: core.AlgHash,
		Unsorted:  true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Sorted, c.NNZ())
	// Output: false 2
}

// ExampleRecommend shows the Table 4 recipe picking an algorithm from the
// input characteristics.
func ExampleRecommend() {
	a := matrix.Identity(100)
	alg := core.Recommend(a, a, true, core.UseSquare)
	fmt.Println(alg == core.AlgAuto) // always a concrete algorithm
	// Output: false
}

// ExampleFlop counts the scalar multiplications of a product without
// computing it.
func ExampleFlop() {
	a := matrix.Identity(4)
	total, perRow := core.Flop(a, a)
	fmt.Println(total, len(perRow))
	// Output: 4 4
}
