package graph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/spgemm"
)

func TestClusteringCoefficientsK4(t *testing.T) {
	// Complete graph: every vertex has cc = 1.
	a := adjacency(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	cc, err := ClusteringCoefficients(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range cc {
		if math.Abs(c-1) > 1e-12 {
			t.Fatalf("K4 cc[%d] = %v, want 1", v, c)
		}
	}
}

func TestClusteringCoefficientsPath(t *testing.T) {
	// A path has no triangles: all coefficients zero.
	a := adjacency(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	cc, err := ClusteringCoefficients(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range cc {
		if c != 0 {
			t.Fatalf("path cc[%d] = %v, want 0", v, c)
		}
	}
}

func TestClusteringCoefficientsMixed(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 2.
	a := adjacency(4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	cc, err := ClusteringCoefficients(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Vertices 0,1: degree 2, one triangle → cc = 1.
	if math.Abs(cc[0]-1) > 1e-12 || math.Abs(cc[1]-1) > 1e-12 {
		t.Fatalf("cc = %v", cc)
	}
	// Vertex 2: degree 3, one triangle → cc = 1/3.
	if math.Abs(cc[2]-1.0/3) > 1e-12 {
		t.Fatalf("cc[2] = %v, want 1/3", cc[2])
	}
	// Vertex 3: degree 1 → 0.
	if cc[3] != 0 {
		t.Fatalf("cc[3] = %v", cc[3])
	}
}

func TestClusteringCoefficientsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	m := matrix.Random(40, 40, 0.15, rng)
	cc, err := ClusteringCoefficients(m, &spgemm.Options{Algorithm: spgemm.AlgHashVec})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force on the cleaned adjacency.
	coo := matrix.FromCSR(m)
	coo.Symmetrize()
	a := dropDiagonal(Pattern(coo.ToCSR()))
	d := a.ToDense()
	for v := 0; v < a.Rows; v++ {
		deg := int(a.RowNNZ(v))
		if deg < 2 {
			if cc[v] != 0 {
				t.Fatalf("cc[%d] = %v for degree %d", v, cc[v], deg)
			}
			continue
		}
		var tri int
		cols, _ := a.Row(v)
		for i := 0; i < len(cols); i++ {
			for j := i + 1; j < len(cols); j++ {
				if d.At(int(cols[i]), int(cols[j])) != 0 {
					tri++
				}
			}
		}
		want := 2 * float64(tri) / (float64(deg) * float64(deg-1))
		if math.Abs(cc[v]-want) > 1e-9 {
			t.Fatalf("cc[%d] = %v, want %v", v, cc[v], want)
		}
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	// K3: transitivity 1. Path: 0.
	k3 := adjacency(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	g, err := GlobalClusteringCoefficient(k3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-1) > 1e-12 {
		t.Fatalf("K3 transitivity = %v", g)
	}
	path := adjacency(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	g, err = GlobalClusteringCoefficient(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g != 0 {
		t.Fatalf("path transitivity = %v", g)
	}
}

func TestClusteringCoefficientsRejectsNonSquare(t *testing.T) {
	if _, err := ClusteringCoefficients(matrix.NewCSR(2, 3), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	var edges [][2]int32
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int32{i, j}, [2]int32{i + 5, j + 5})
		}
	}
	edges = append(edges, [2]int32{4, 5}) // weak bridge
	a := adjacency(10, edges)
	rng := rand.New(rand.NewSource(313))
	res, err := LabelPropagation(a, 50, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Each clique must be internally uniform.
	for i := 1; i < 5; i++ {
		if res.Label[i] != res.Label[0] {
			t.Fatalf("clique 1 split: %v", res.Label)
		}
		if res.Label[i+5] != res.Label[5] {
			t.Fatalf("clique 2 split: %v", res.Label)
		}
	}
	if res.NumCommunities < 1 || res.NumCommunities > 2 {
		t.Fatalf("communities = %d", res.NumCommunities)
	}
	if res.Iterations < 1 {
		t.Fatal("no iterations ran")
	}
}

func TestLabelPropagationIsolatedVertices(t *testing.T) {
	a := adjacency(4, [][2]int32{{0, 1}}) // 2 and 3 isolated
	rng := rand.New(rand.NewSource(314))
	res, err := LabelPropagation(a, 10, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label[2] == res.Label[3] {
		t.Fatal("isolated vertices should keep distinct labels")
	}
	if res.Label[0] != res.Label[1] {
		t.Fatal("connected pair should share a label")
	}
}

func TestLabelPropagationRejectsNonSquare(t *testing.T) {
	if _, err := LabelPropagation(matrix.NewCSR(2, 3), 5, nil, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestOneHotEncoding(t *testing.T) {
	f := oneHot([]int32{2, 0, 1})
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	d := f.ToDense()
	if d.At(0, 2) != 1 || d.At(1, 0) != 1 || d.At(2, 1) != 1 || f.NNZ() != 3 {
		t.Fatal("one-hot wrong")
	}
}

func TestArgmaxRandomTie(t *testing.T) {
	rng := rand.New(rand.NewSource(315))
	// Clear max.
	if got := argmaxRandomTie([]int32{3, 7, 9}, []float64{1, 5, 2}, rng); got != 7 {
		t.Fatalf("argmax = %d", got)
	}
	// Ties: both candidates must be reachable.
	seen := map[int32]bool{}
	for i := 0; i < 200; i++ {
		seen[argmaxRandomTie([]int32{1, 2}, []float64{5, 5}, rng)] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("tie-breaking not random: %v", seen)
	}
}
