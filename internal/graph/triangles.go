// Package graph implements the graph-algorithm use cases the paper's
// evaluation is built around: triangle counting via L·U (Section 5.6),
// multi-source BFS as square × tall-skinny SpGEMM (Section 5.5), and Markov
// clustering (cited in Section 1 and 5.4 as the canonical A² workload).
package graph

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
	"repro/internal/semiring"
	"repro/internal/spgemm"
)

// TriangleResult reports a triangle count and the SpGEMM statistics of the
// L·U step, which is what the paper's Figure 17 benchmarks.
type TriangleResult struct {
	Triangles int64
	// L and U are the reordered triangular factors, exposed so benchmarks
	// can time the L·U SpGEMM step in isolation.
	L, U *matrix.CSR
}

// PrepareTriangles performs the preprocessing of the paper's Section 5.6 on
// an undirected graph: symmetrize and de-weight the adjacency, reorder
// vertices by increasing degree, and split A = L + U into strictly lower and
// upper triangular parts.
func PrepareTriangles(adj *matrix.CSR) (*TriangleResult, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	// Symmetrize (the generators may emit directed edges), then reset all
	// values to 1: symmetrizing an already-symmetric matrix doubles the
	// values when duplicates merge, and triangle counting needs a 0/1
	// adjacency.
	coo := matrix.FromCSR(adj)
	coo.Symmetrize()
	a := Pattern(coo.ToCSR())
	a = dropDiagonal(a)

	perm := DegreeOrderPerm(a)
	a = ApplySymmetricPermutation(a, perm)

	res := &TriangleResult{
		L: a.LowerTriangle(),
		U: a.UpperTriangle(),
	}
	return res, nil
}

// CountTriangles runs the full pipeline: preprocessing, the masked L·U
// SpGEMM, and the final reduction. opt selects the SpGEMM algorithm for the
// L·U step; the mask restricts output to wedges that close into triangles.
func CountTriangles(adj *matrix.CSR, opt *spgemm.Options) (*TriangleResult, error) {
	res, err := PrepareTriangles(adj)
	if err != nil {
		return nil, err
	}
	n, err := CountFromLU(res.L, res.U, opt)
	if err != nil {
		return nil, err
	}
	res.Triangles = n
	return res, nil
}

// CountFromLU computes the number of triangles given the triangular split:
// triangles = Σ ((L·U) .* L). With a hash-family algorithm the mask is
// fused into the SpGEMM; otherwise the product is formed and filtered.
//
// The product runs over int64 with the monomorphized plus-times ring:
// wedge counts are integers, so summing them in int64 is exact at any
// scale, where the historical float64 accumulation relied on counts staying
// under 2^53 and a final +0.5 rounding. opt carries the algorithm/worker
// selection; Semiring, Mask and Context are ignored (the mask is derived
// from L, and a float64 Context cannot serve an int64 product).
func CountFromLU(l, u *matrix.CSR, opt *spgemm.Options) (int64, error) {
	if opt == nil {
		opt = &spgemm.Options{Algorithm: spgemm.AlgHash}
	}
	toCount := func(v float64) int64 {
		if v != 0 {
			return 1
		}
		return 0
	}
	li := matrix.MapValues(l, toCount)
	ui := matrix.MapValues(u, toCount)
	inner := spgemm.OptionsG[int64]{
		Algorithm: opt.Algorithm,
		Workers:   opt.Workers,
		Unsorted:  opt.Unsorted,
		UseCase:   spgemm.UseTriangle,
		Stats:     opt.Stats,
	}
	useMask := inner.Algorithm == spgemm.AlgHash || inner.Algorithm == spgemm.AlgHashVec
	if useMask {
		inner.Mask = li
	}
	b, err := spgemm.MultiplyRing(semiring.PlusTimesI64{}, li, ui, &inner)
	if err != nil {
		return 0, err
	}
	if useMask {
		return b.Sum(), nil
	}
	// Filter the full product against L's pattern.
	masked, err := matrix.HadamardG(b, li)
	if err != nil {
		return 0, err
	}
	return masked.Sum(), nil
}

// Pattern returns a copy of m with every stored value set to 1.
func Pattern(m *matrix.CSR) *matrix.CSR {
	out := m.Clone()
	for i := range out.Val {
		out.Val[i] = 1
	}
	return out
}

// dropDiagonal removes self-loops.
func dropDiagonal(m *matrix.CSR) *matrix.CSR {
	out := &matrix.CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int64, m.Rows+1), Sorted: m.Sorted}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			if int(m.ColIdx[p]) != i {
				out.ColIdx = append(out.ColIdx, m.ColIdx[p])
				out.Val = append(out.Val, m.Val[p])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

// DegreeOrderPerm returns a permutation ordering vertices by increasing
// degree ("for optimal performance in triangle counting, we reorder rows
// with increasing number of nonzeros").
func DegreeOrderPerm(a *matrix.CSR) []int {
	perm := make([]int, a.Rows)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool {
		return a.RowNNZ(perm[x]) < a.RowNNZ(perm[y])
	})
	return perm
}

// ApplySymmetricPermutation computes P·A·Pᵀ: vertex perm[i] becomes vertex i.
func ApplySymmetricPermutation(a *matrix.CSR, perm []int) *matrix.CSR {
	inv := make([]int32, len(perm))
	for newID, oldID := range perm {
		inv[oldID] = int32(newID)
	}
	out := a.PermuteRows(perm).PermuteCols(inv)
	out.SortRows()
	return out
}
