package graph

import "repro/internal/obs"

// Graph-application observability: per-iteration counters labeled by app.
// One atomic add per iteration of an algorithm's outer loop — never per
// vertex or per edge — so enabled-but-unscraped metrics are free at the
// granularity these loops run at.
var (
	mIters = obs.NewCounterVec("graph_iterations_total",
		"outer-loop iterations executed, by application", "app")
	mIterNNZ = obs.NewCounterVec("graph_iteration_nnz_total",
		"nonzeros produced by per-iteration SpGEMM products, by application", "app")
)

// Cached children so the loops do a single atomic add per iteration.
var (
	mclIters  = mIters.With("mcl")
	mclNNZ    = mIterNNZ.With("mcl")
	bfsIters  = mIters.With("msbfs")
	bfsNNZ    = mIterNNZ.With("msbfs")
	lpIters   = mIters.With("labelprop")
	lpNNZ     = mIterNNZ.With("labelprop")
	betwIters = mIters.With("betweenness")
	betwNNZ   = mIterNNZ.With("betweenness")
)
