package graph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/spgemm"
)

// bruteBetweenness is sequential Brandes, the reference implementation.
func bruteBetweenness(a *matrix.CSR, sources []int32) []float64 {
	n := a.Rows
	bc := make([]float64, n)
	for _, s := range sources {
		// BFS from s.
		dist := make([]int32, n)
		sigma := make([]float64, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		sigma[s] = 1
		order := []int32{s}
		queue := []int32{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			cols, _ := a.Row(int(v))
			for _, w := range cols {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
					order = append(order, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		delta := make([]float64, n)
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			cols, _ := a.Row(int(w))
			for _, v := range cols {
				if dist[v] == dist[w]-1 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}

func cleanedAdj(t *testing.T, g *matrix.CSR) *matrix.CSR {
	t.Helper()
	coo := matrix.FromCSR(g)
	coo.Symmetrize()
	return dropDiagonal(Pattern(coo.ToCSR()))
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4 with all sources: interior vertices carry all pairs
	// that pass through them; classic values are 6, 8 (nodes 1 and 3 carry
	// 3 pairs each direction, node 2 carries 4).
	a := adjacency(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	all := []int32{0, 1, 2, 3, 4}
	got, err := Betweenness(a, all, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteBetweenness(cleanedAdj(t, a), all)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("bc[%d] = %v, want %v (all: %v vs %v)", v, got[v], want[v], got, want)
		}
	}
	// Endpoints have zero betweenness on a path.
	if got[0] != 0 || got[4] != 0 {
		t.Fatalf("endpoints: %v", got)
	}
	// The middle vertex dominates.
	if got[2] <= got[1] {
		t.Fatalf("middle not maximal: %v", got)
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star: center on every shortest path between leaves; leaves zero.
	a := adjacency(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	all := []int32{0, 1, 2, 3, 4}
	got, err := Betweenness(a, all, 2, nil) // batch size 2: multiple batches
	if err != nil {
		t.Fatal(err)
	}
	// Center carries all C(4,2)*2 = 12 ordered leaf pairs.
	if math.Abs(got[0]-12) > 1e-9 {
		t.Fatalf("center bc = %v, want 12", got[0])
	}
	for v := 1; v < 5; v++ {
		if got[v] != 0 {
			t.Fatalf("leaf bc[%d] = %v", v, got[v])
		}
	}
}

func TestBetweennessMatchesBrandesOnRMAT(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	g := gen.RMAT(6, 4, gen.G500Params, rng)
	a := cleanedAdj(t, g)
	var sources []int32
	for s := int32(0); s < int32(a.Rows); s += 3 {
		sources = append(sources, s)
	}
	want := bruteBetweenness(a, sources)
	for _, alg := range []spgemm.Algorithm{spgemm.AlgHash, spgemm.AlgHeap} {
		got, err := Betweenness(g, sources, 16, &spgemm.Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for v := range want {
			diff := math.Abs(got[v] - want[v])
			if diff > 1e-6 && diff > 1e-9*math.Abs(want[v]) {
				t.Fatalf("%v: bc[%d] = %v, want %v", alg, v, got[v], want[v])
			}
		}
	}
}

func TestBetweennessDisconnected(t *testing.T) {
	a := adjacency(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	all := []int32{0, 1, 2, 3, 4, 5}
	got, err := Betweenness(a, all, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteBetweenness(cleanedAdj(t, a), all)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("bc[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestBetweennessErrors(t *testing.T) {
	if _, err := Betweenness(matrix.NewCSR(2, 3), []int32{0}, 0, nil); err == nil {
		t.Fatal("expected non-square error")
	}
	a := adjacency(3, [][2]int32{{0, 1}})
	if _, err := Betweenness(a, []int32{9}, 0, nil); err == nil {
		t.Fatal("expected out-of-range source error")
	}
}
