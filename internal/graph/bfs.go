package graph

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/semiring"
	"repro/internal/spgemm"
)

// BFSResult holds multi-source BFS levels: Level[v][s] is the distance from
// source s to vertex v, or -1 if unreachable.
type BFSResult struct {
	Sources []int32
	Level   [][]int32 // Rows × len(Sources)
}

// MSBFS runs breadth-first search from all sources simultaneously by
// repeated SpGEMM of the graph with a tall-skinny frontier matrix over the
// boolean or-and semiring — the paper's Section 5.5 use case ("the
// left-hand-side matrix represents the graph and the right-hand-side matrix
// represents the stack of frontiers, each column representing one BFS
// frontier").
//
// The sweep runs natively over CSRG[bool] with the monomorphized OrAndBool
// ring: frontier values are 1-byte booleans rather than 8-byte floats, which
// cuts the value-stream bandwidth of every product by 8×, and the or-and
// fold compiles to direct boolean ops instead of going through a func-pointer
// semiring. opt carries the algorithm/worker selection; its Semiring, Mask
// and Context fields are ignored (the semiring is fixed, and a float64
// Context cannot serve a bool product — MSBFS keeps its own).
func MSBFS(g *matrix.CSR, sources []int32, opt *spgemm.Options) (*BFSResult, error) {
	if g.Rows != g.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", g.Rows, g.Cols)
	}
	n := g.Rows
	k := len(sources)
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("graph: source %d out of range [0,%d)", s, n)
		}
	}
	if opt == nil {
		opt = &spgemm.Options{Algorithm: spgemm.AlgHash}
	}
	inner := spgemm.OptionsG[bool]{
		Algorithm: opt.Algorithm,
		Workers:   opt.Workers,
		UseCase:   spgemm.UseTallSkinny,
		Stats:     opt.Stats,
		// One reusable context across the frontier sweeps.
		Context: spgemm.NewContextG[bool](),
	}

	// The frontier advances along edges u→v for each edge (u,v); with the
	// frontier stored as an n×k matrix F, the next frontier is Aᵀ·F. Build
	// the (boolean pattern of the) transpose once.
	at := matrix.MapValues(g.Transpose(), func(v float64) bool { return v != 0 })

	res := &BFSResult{Sources: append([]int32(nil), sources...)}
	res.Level = make([][]int32, n)
	for v := range res.Level {
		row := make([]int32, k)
		for j := range row {
			row[j] = -1
		}
		res.Level[v] = row
	}

	// Initial frontier: F[s][j] = true for source j.
	frontier := matrix.NewCOOG[bool](n, k)
	for j, s := range sources {
		frontier.Append(s, int32(j), true)
		res.Level[s][j] = 0
	}
	f := frontier.ToCSR()

	for depth := int32(1); f.NNZ() > 0; depth++ {
		next, err := spgemm.MultiplyRing(semiring.OrAndBool{}, at, f, &inner)
		if err != nil {
			return nil, err
		}
		bfsIters.Inc()
		bfsNNZ.Add(next.NNZ())
		// Mask out already-visited (vertex, source) pairs and record
		// levels for the fresh ones.
		nf := matrix.NewCOOG[bool](n, k)
		for v := 0; v < n; v++ {
			cols, _ := next.Row(v)
			for _, j := range cols {
				if res.Level[v][j] < 0 {
					res.Level[v][j] = depth
					nf.Append(int32(v), j, true)
				}
			}
		}
		f = nf.ToCSR()
	}
	return res, nil
}

// Reached returns how many (vertex, source) pairs were reached.
func (r *BFSResult) Reached() int64 {
	var c int64
	for _, row := range r.Level {
		for _, l := range row {
			if l >= 0 {
				c++
			}
		}
	}
	return c
}
