package graph

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/mempool"
	"repro/internal/spgemm"
)

// MCLOptions configures Markov clustering.
type MCLOptions struct {
	// Inflation is the inflation exponent r (default 2).
	Inflation float64
	// Prune drops entries below this value after inflation (default 1e-4).
	Prune float64
	// MaxIters bounds the expansion/inflation loop (default 100).
	MaxIters int
	// ChaosTol declares convergence when the chaos indicator (max over
	// rows of maxval − Σv²) falls below it (default 1e-3).
	ChaosTol float64
	// SpGEMM selects the algorithm used for the expansion step.
	SpGEMM *spgemm.Options
}

func (o *MCLOptions) defaults() MCLOptions {
	d := MCLOptions{Inflation: 2, Prune: 1e-4, MaxIters: 100, ChaosTol: 1e-3}
	if o == nil {
		return d
	}
	out := *o
	if out.Inflation <= 0 {
		out.Inflation = d.Inflation
	}
	if out.Prune <= 0 {
		out.Prune = d.Prune
	}
	if out.MaxIters <= 0 {
		out.MaxIters = d.MaxIters
	}
	if out.ChaosTol <= 0 {
		out.ChaosTol = d.ChaosTol
	}
	return out
}

// MCLResult reports the clustering.
type MCLResult struct {
	// Cluster[v] is the cluster id of vertex v (ids are dense, 0-based).
	Cluster []int
	// NumClusters is the number of distinct clusters.
	NumClusters int
	// Iterations is how many expansion/inflation rounds ran.
	Iterations int
	// Stats, when MCLOptions.SpGEMM.Stats was set, is the cumulative
	// execution profile of all expansion products: per-phase times and
	// worker counters summed over the whole run (spgemm.Context
	// accumulation), not just the last iteration's.
	Stats *spgemm.ExecStats
}

// MCL runs Markov clustering (van Dongen; HipMCL in the paper's reference
// [5]) on an undirected graph: iterate expansion (M ← M·M, the paper's
// canonical A² SpGEMM workload), inflation (elementwise power + renormalize)
// and pruning until the process converges, then read clusters off the final
// matrix as connected components.
func MCL(adj *matrix.CSR, o *MCLOptions) (*MCLResult, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	opt := o.defaults()

	// M starts as the row-normalized adjacency with self-loops (the
	// standard MCL initialization; row-stochastic is the transpose
	// convention and equivalent by symmetry of the update).
	coo := matrix.FromCSR(adj)
	for i := 0; i < adj.Rows; i++ {
		coo.Append(int32(i), int32(i), 1)
	}
	m := coo.ToCSR()
	normalizeRows(m)

	// Every expansion is an A²-shaped product: reuse one execution context
	// across iterations so per-worker accumulators and bookkeeping are paid
	// for once (the structure changes each round, so a Plan does not apply,
	// but the scratch does).
	inner := spgemm.Options{}
	if opt.SpGEMM != nil {
		inner = *opt.SpGEMM
	}
	if inner.Context == nil {
		inner.Context = spgemm.NewContext()
	}

	iters := 0
	for ; iters < opt.MaxIters; iters++ {
		// Expansion.
		next, err := spgemm.Multiply(m, m, &inner)
		if err != nil {
			return nil, err
		}
		mclIters.Inc()
		mclNNZ.Add(next.NNZ())
		// Inflation + pruning + normalization, then convergence check.
		inflate(next, opt.Inflation, opt.Prune)
		if chaos(next) < opt.ChaosTol {
			m = next
			iters++
			break
		}
		m = next
	}

	clusters, count := components(m)
	res := &MCLResult{Cluster: clusters, NumClusters: count, Iterations: iters}
	if inner.Stats != nil {
		res.Stats = inner.Context.CumulativeStats()
	}
	return res, nil
}

// normalizeRows scales each row to sum 1 (rows that sum to zero are left).
func normalizeRows(m *matrix.CSR) {
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var s float64
		for p := lo; p < hi; p++ {
			s += m.Val[p]
		}
		if s == 0 {
			continue
		}
		for p := lo; p < hi; p++ {
			m.Val[p] /= s
		}
	}
}

// inflate raises entries to the power r, prunes entries below the threshold
// (always keeping each row's maximum), and renormalizes rows. The matrix is
// compacted in place. The compacted row-pointer array is staged in a
// checked-out scratch buffer and copied back over m.RowPtr, so the per-MCL-
// iteration allocation this used to make is gone after the first iteration.
func inflate(m *matrix.CSR, r, prune float64) {
	scratch := mempool.Acquire()
	defer mempool.Release(scratch)
	out := int64(0)
	newPtr := scratch.EnsureInt64A(m.Rows + 1)
	newPtr[0] = 0
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var sum, max float64
		for p := lo; p < hi; p++ {
			v := math.Pow(m.Val[p], r)
			m.Val[p] = v
			sum += v
			if v > max {
				max = v
			}
		}
		if sum == 0 {
			newPtr[i+1] = out
			continue
		}
		threshold := prune * sum
		for p := lo; p < hi; p++ {
			v := m.Val[p]
			if v >= threshold || v == max {
				m.ColIdx[out] = m.ColIdx[p]
				m.Val[out] = v
				out++
			}
		}
		// Renormalize the kept entries.
		var kept float64
		for p := newPtr[i]; p < out; p++ {
			kept += m.Val[p]
		}
		for p := newPtr[i]; p < out; p++ {
			m.Val[p] /= kept
		}
		newPtr[i+1] = out
	}
	copy(m.RowPtr, newPtr)
	m.ColIdx = m.ColIdx[:out]
	m.Val = m.Val[:out]
}

// chaos is MCL's convergence indicator: the largest, over rows, of
// (max value − sum of squared values). Zero for a fully converged
// (idempotent doubly-idempotent) matrix.
func chaos(m *matrix.CSR) float64 {
	var worst float64
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var max, ss float64
		for p := lo; p < hi; p++ {
			v := m.Val[p]
			ss += v * v
			if v > max {
				max = v
			}
		}
		if c := max - ss; c > worst {
			worst = c
		}
	}
	return worst
}

// components labels the connected components of the nonzero pattern of m
// (treated as undirected) with a union-find.
func components(m *matrix.CSR) ([]int, int) {
	parent := make([]int, m.Rows)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			union(i, int(c))
		}
	}
	labels := make(map[int]int)
	out := make([]int, m.Rows)
	for i := range out {
		root := find(i)
		id, ok := labels[root]
		if !ok {
			id = len(labels)
			labels[root] = id
		}
		out[i] = id
	}
	return out, len(labels)
}
