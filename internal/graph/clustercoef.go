package graph

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/spgemm"
)

// ClusteringCoefficients computes the local clustering coefficient of every
// vertex — cc(v) = triangles(v) / C(deg(v), 2) — with one masked SpGEMM:
// B = (A·A) .* A counts, for each edge (v,w), the wedges v–k–w that close,
// so the row sums of B are 2·triangles(v). Clustering coefficients are
// listed in the paper's Section 1 (reference [4]) among the graph kernels
// whose bulk computation is SpGEMM.
func ClusteringCoefficients(adj *matrix.CSR, opt *spgemm.Options) ([]float64, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	// Clean 0/1 symmetric adjacency without self-loops.
	coo := matrix.FromCSR(adj)
	coo.Symmetrize()
	a := Pattern(coo.ToCSR())
	a = dropDiagonal(a)

	if opt == nil {
		opt = &spgemm.Options{Algorithm: spgemm.AlgHash}
	}
	inner := *opt
	switch inner.Algorithm {
	case spgemm.AlgHash, spgemm.AlgHashVec:
	default:
		inner.Algorithm = spgemm.AlgHash
	}
	inner.Mask = a
	inner.Semiring = nil
	b, err := spgemm.Multiply(a, a, &inner)
	if err != nil {
		return nil, err
	}
	cc := make([]float64, a.Rows)
	for v := 0; v < a.Rows; v++ {
		deg := float64(a.RowNNZ(v))
		if deg < 2 {
			continue // cc undefined/zero for degree < 2
		}
		_, vals := b.Row(v)
		var wedgeClosures float64
		for _, w := range vals {
			wedgeClosures += w
		}
		// Row sum counts each triangle at v twice (once per incident edge
		// direction); the number of potential wedges is deg·(deg−1).
		cc[v] = wedgeClosures / (deg * (deg - 1))
	}
	return cc, nil
}

// GlobalClusteringCoefficient returns 3·triangles / wedges (transitivity).
func GlobalClusteringCoefficient(adj *matrix.CSR, opt *spgemm.Options) (float64, error) {
	res, err := CountTriangles(adj, opt)
	if err != nil {
		return 0, err
	}
	// Recompute the cleaned adjacency for the wedge count.
	coo := matrix.FromCSR(adj)
	coo.Symmetrize()
	a := dropDiagonal(Pattern(coo.ToCSR()))
	var wedges float64
	for v := 0; v < a.Rows; v++ {
		d := float64(a.RowNNZ(v))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0, nil
	}
	return 3 * float64(res.Triangles) / wedges, nil
}
