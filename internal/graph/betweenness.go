package graph

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/spgemm"
)

// Betweenness computes (unnormalized) betweenness centrality on an
// unweighted undirected graph with Brandes' algorithm expressed as batched
// SpGEMM — the formulation of the Combinatorial BLAS cited in the paper's
// Section 1 (reference [8]): breadth-first path counting multiplies the
// graph by a tall-skinny frontier matrix (one column per source), and the
// backward dependency accumulation multiplies by a tall-skinny matrix of
// scaled dependencies.
//
// sources selects the BFS roots; pass all vertices for exact centrality or a
// sample for the usual approximation. Each batch of up to batchSize sources
// runs as one sequence of SpGEMM calls.
func Betweenness(adj *matrix.CSR, sources []int32, batchSize int, opt *spgemm.Options) ([]float64, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	n := adj.Rows
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("graph: source %d out of range [0,%d)", s, n)
		}
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	// Clean undirected adjacency.
	coo := matrix.FromCSR(adj)
	coo.Symmetrize()
	a := dropDiagonal(Pattern(coo.ToCSR()))
	at := a // symmetric

	if opt == nil {
		opt = &spgemm.Options{Algorithm: spgemm.AlgHash}
	}
	inner := *opt
	inner.Semiring = nil
	inner.Mask = nil
	inner.Unsorted = false
	if inner.Context == nil {
		// One reusable context across both sweeps of every batch.
		inner.Context = spgemm.NewContext()
	}

	bc := make([]float64, n)
	for start := 0; start < len(sources); start += batchSize {
		end := start + batchSize
		if end > len(sources) {
			end = len(sources)
		}
		if err := betweennessBatch(at, sources[start:end], &inner, bc); err != nil {
			return nil, err
		}
	}
	return bc, nil
}

// betweennessBatch accumulates the dependency of one batch of sources into
// bc.
func betweennessBatch(a *matrix.CSR, sources []int32, opt *spgemm.Options, bc []float64) error {
	n := a.Rows
	k := len(sources)

	// sigma[v*k+j]: number of shortest paths from sources[j] to v.
	// depth[v*k+j]: BFS level, -1 if unreached.
	sigma := make([]float64, n*k)
	depth := make([]int32, n*k)
	for i := range depth {
		depth[i] = -1
	}

	// Level-0 frontier: the sources themselves, with path count 1.
	fr := matrix.NewCOO(n, k)
	for j, s := range sources {
		sigma[int(s)*k+j] = 1
		depth[int(s)*k+j] = 0
		fr.Append(s, int32(j), 1)
	}
	frontiers := []*matrix.CSR{fr.ToCSR()}

	// Forward sweep: P = Aᵀ·F carries path counts to the next level.
	for d := int32(1); frontiers[len(frontiers)-1].NNZ() > 0; d++ {
		p, err := spgemm.Multiply(a, frontiers[len(frontiers)-1], opt)
		if err != nil {
			return err
		}
		betwIters.Inc()
		betwNNZ.Add(p.NNZ())
		next := matrix.NewCOO(n, k)
		for v := 0; v < n; v++ {
			cols, vals := p.Row(v)
			for t, j := range cols {
				idx := v*k + int(j)
				if depth[idx] == -1 {
					depth[idx] = d
					sigma[idx] = vals[t]
					next.Append(int32(v), j, vals[t])
				} else if depth[idx] == d {
					// Another predecessor at the same level (possible
					// when P is produced in pieces — kept for safety).
					sigma[idx] += vals[t]
				}
			}
		}
		frontiers = append(frontiers, next.ToCSR())
	}

	// Backward sweep: delta[v] += sum over successors w of
	// sigma[v]/sigma[w] * (1 + delta[w]).
	delta := make([]float64, n*k)
	for d := len(frontiers) - 1; d >= 1; d-- {
		// T holds (1+delta)/sigma for vertices at depth d.
		tcoo := matrix.NewCOO(n, k)
		f := frontiers[d]
		for v := 0; v < n; v++ {
			cols, _ := f.Row(v)
			for _, j := range cols {
				idx := v*k + int(j)
				if sigma[idx] > 0 {
					tcoo.Append(int32(v), j, (1+delta[idx])/sigma[idx])
				}
			}
		}
		tm := tcoo.ToCSR()
		if tm.NNZ() == 0 {
			continue
		}
		u, err := spgemm.Multiply(a, tm, opt)
		if err != nil {
			return err
		}
		betwIters.Inc()
		betwNNZ.Add(u.NNZ())
		// delta(v) += sigma(v) * U(v) for v at depth d-1.
		prev := frontiers[d-1]
		for v := 0; v < n; v++ {
			ucols, uvals := u.Row(v)
			if len(ucols) == 0 {
				continue
			}
			// Mask U's row by the previous frontier's pattern.
			pcols, _ := prev.Row(v)
			pi := 0
			for t, j := range ucols {
				for pi < len(pcols) && pcols[pi] < j {
					pi++
				}
				if pi < len(pcols) && pcols[pi] == j {
					idx := v*k + int(j)
					delta[idx] += sigma[idx] * uvals[t]
				}
			}
		}
	}

	// Accumulate: sources are excluded from their own counts.
	for v := 0; v < n; v++ {
		for j, s := range sources {
			if int32(v) != s {
				bc[v] += delta[v*k+j]
			}
		}
	}
	return nil
}
