package graph

import (
	"fmt"
	"math/rand"

	"repro/internal/matrix"
	"repro/internal/spgemm"
)

// LabelPropagationResult reports a label-propagation community detection.
type LabelPropagationResult struct {
	// Label[v] is the community label of vertex v (dense 0-based ids).
	Label []int
	// NumCommunities is the number of distinct final labels.
	NumCommunities int
	// Iterations is the number of propagation rounds executed.
	Iterations int
}

// LabelPropagation runs the near-linear-time community detection of
// Raghavan, Albert and Kumara (the paper's Section 1, reference [27]),
// formulated as SpGEMM: with the current labels one-hot encoded in a sparse
// n×n matrix F, the product A·F gives, for every vertex, the weighted count
// of each label among its neighbours; every vertex then adopts an argmax
// label. Iterate until labels stabilize or maxIters rounds pass.
//
// rng breaks argmax ties randomly (the standard synchronous-update
// tie-breaking that avoids label oscillation).
func LabelPropagation(adj *matrix.CSR, maxIters int, rng *rand.Rand, opt *spgemm.Options) (*LabelPropagationResult, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	coo := matrix.FromCSR(adj)
	coo.Symmetrize()
	a := dropDiagonal(Pattern(coo.ToCSR()))
	n := a.Rows
	// Add self-loops so each vertex counts its own label. Without this,
	// synchronous updates oscillate on bipartite-ish structures (two
	// connected vertices swap labels forever); with it, ties are broken
	// randomly and the process converges.
	withSelf := matrix.FromCSR(a)
	for v := 0; v < n; v++ {
		withSelf.Append(int32(v), int32(v), 1)
	}
	a = withSelf.ToCSR()

	if opt == nil {
		opt = &spgemm.Options{Algorithm: spgemm.AlgHash}
	}
	inner := *opt
	inner.Mask = nil
	inner.Semiring = nil
	inner.Unsorted = true // argmax scan does not need sorted rows
	if inner.Context == nil {
		// One reusable context across the propagation rounds.
		inner.Context = spgemm.NewContext()
	}

	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(v)
	}

	iters := 0
	for ; iters < maxIters; iters++ {
		f := oneHot(labels)
		counts, err := spgemm.Multiply(a, f, &inner)
		if err != nil {
			return nil, err
		}
		lpIters.Inc()
		lpNNZ.Add(counts.NNZ())
		changed := 0
		for v := 0; v < n; v++ {
			cols, vals := counts.Row(v)
			if len(cols) == 0 {
				continue // isolated vertex keeps its label
			}
			best := argmaxRandomTie(cols, vals, rng)
			if best != labels[v] {
				labels[v] = best
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}

	// Relabel densely.
	remap := map[int32]int{}
	out := make([]int, n)
	for v, l := range labels {
		id, ok := remap[l]
		if !ok {
			id = len(remap)
			remap[l] = id
		}
		out[v] = id
	}
	return &LabelPropagationResult{Label: out, NumCommunities: len(remap), Iterations: iters}, nil
}

// oneHot encodes labels as a sparse n×n matrix with F[v][label(v)] = 1.
func oneHot(labels []int32) *matrix.CSR {
	n := len(labels)
	f := &matrix.CSR{
		Rows:   n,
		Cols:   n,
		RowPtr: make([]int64, n+1),
		ColIdx: make([]int32, n),
		Val:    make([]float64, n),
		Sorted: true,
	}
	for v, l := range labels {
		f.RowPtr[v+1] = int64(v + 1)
		f.ColIdx[v] = l
		f.Val[v] = 1
	}
	return f
}

// argmaxRandomTie returns the column with the maximum value, choosing
// uniformly among ties.
func argmaxRandomTie(cols []int32, vals []float64, rng *rand.Rand) int32 {
	best := cols[0]
	bestV := vals[0]
	ties := 1
	for i := 1; i < len(cols); i++ {
		switch {
		case vals[i] > bestV:
			best = cols[i]
			bestV = vals[i]
			ties = 1
		case vals[i] == bestV:
			ties++
			if rng != nil && rng.Intn(ties) == 0 {
				best = cols[i]
			}
		}
	}
	return best
}
