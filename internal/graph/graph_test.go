package graph

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/spgemm"
)

// adjacency builds a symmetric 0/1 adjacency from an edge list.
func adjacency(n int, edges [][2]int32) *matrix.CSR {
	c := matrix.NewCOO(n, n)
	for _, e := range edges {
		c.Append(e[0], e[1], 1)
		c.Append(e[1], e[0], 1)
	}
	m := c.ToCSR()
	// Merge duplicates may have summed values; reset to 1.
	for i := range m.Val {
		m.Val[i] = 1
	}
	return m
}

// bruteTriangles counts triangles by enumeration.
func bruteTriangles(a *matrix.CSR) int64 {
	d := a.ToDense()
	var count int64
	n := a.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d.At(i, j) == 0 {
				continue
			}
			for k := j + 1; k < n; k++ {
				if d.At(i, k) != 0 && d.At(j, k) != 0 {
					count++
				}
			}
		}
	}
	return count
}

func TestCountTrianglesK3(t *testing.T) {
	a := adjacency(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	res, err := CountTriangles(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 1 {
		t.Fatalf("K3 triangles = %d, want 1", res.Triangles)
	}
}

func TestCountTrianglesK4(t *testing.T) {
	a := adjacency(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	res, err := CountTriangles(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 4 {
		t.Fatalf("K4 triangles = %d, want 4", res.Triangles)
	}
}

func TestCountTrianglesTriangleFree(t *testing.T) {
	// A 6-cycle has no triangles.
	a := adjacency(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	res, err := CountTriangles(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 0 {
		t.Fatalf("cycle triangles = %d, want 0", res.Triangles)
	}
}

func TestCountTrianglesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 10; trial++ {
		g := gen.RMAT(6, 4, gen.G500Params, rng)
		// Symmetrize + clean exactly as the pipeline will.
		prep, err := PrepareTriangles(g)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild the cleaned adjacency from L+U for brute force.
		full := matrix.FromCSR(prep.L)
		full.Entries = append(full.Entries, matrix.FromCSR(prep.U).Entries...)
		a := full.ToCSR()
		want := bruteTriangles(a)
		for _, alg := range []spgemm.Algorithm{spgemm.AlgHash, spgemm.AlgHashVec, spgemm.AlgHeap, spgemm.AlgMKL} {
			got, err := CountFromLU(prep.L, prep.U, &spgemm.Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if got != want {
				t.Fatalf("trial %d %v: triangles = %d, want %d", trial, alg, got, want)
			}
		}
	}
}

func TestPrepareTrianglesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	g := gen.RMAT(7, 4, gen.G500Params, rng)
	res, err := PrepareTriangles(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.L.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := res.U.Validate(); err != nil {
		t.Fatal(err)
	}
	// Strictly triangular.
	for i := 0; i < res.L.Rows; i++ {
		cols, _ := res.L.Row(i)
		for _, c := range cols {
			if int(c) >= i {
				t.Fatalf("L has upper entry (%d,%d)", i, c)
			}
		}
	}
	// L and U are transposes of each other for a symmetric matrix.
	if res.L.NNZ() != res.U.NNZ() {
		t.Fatalf("L nnz %d != U nnz %d", res.L.NNZ(), res.U.NNZ())
	}
	// Degree ordering: row degrees of L+U non-strictly increase on average;
	// check the permutation itself on a fabricated matrix instead.
	a := adjacency(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	perm := DegreeOrderPerm(a)
	for i := 1; i < len(perm); i++ {
		if a.RowNNZ(perm[i-1]) > a.RowNNZ(perm[i]) {
			t.Fatal("degree order not ascending")
		}
	}
}

func TestApplySymmetricPermutationPreservesTriangles(t *testing.T) {
	a := adjacency(5, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}})
	want := bruteTriangles(a)
	perm := []int{4, 2, 0, 3, 1}
	b := ApplySymmetricPermutation(a, perm)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := bruteTriangles(b); got != want {
		t.Fatalf("permutation changed triangle count: %d vs %d", got, want)
	}
}

func TestTrianglesRejectsNonSquare(t *testing.T) {
	if _, err := CountTriangles(matrix.NewCSR(3, 4), nil); err == nil {
		t.Fatal("expected error for non-square adjacency")
	}
}

func TestMSBFSPath(t *testing.T) {
	// Path 0-1-2-3-4: distances from 0 are 0..4.
	a := adjacency(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	res, err := MSBFS(a, []int32{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if res.Level[v][0] != int32(v) {
			t.Fatalf("level[%d] = %d, want %d", v, res.Level[v][0], v)
		}
	}
}

func TestMSBFSMultipleSourcesAndUnreachable(t *testing.T) {
	// Two components: 0-1-2 and 3-4.
	a := adjacency(5, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	res, err := MSBFS(a, []int32{0, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// From source 0: reach 0,1,2; never 3,4.
	if res.Level[2][0] != 2 || res.Level[3][0] != -1 || res.Level[4][0] != -1 {
		t.Fatalf("levels from 0: %v", [][]int32{res.Level[3], res.Level[4]})
	}
	// From source 3: reach 3,4 only.
	if res.Level[4][1] != 1 || res.Level[0][1] != -1 {
		t.Fatal("levels from 3 wrong")
	}
	if res.Reached() != 5 {
		t.Fatalf("Reached = %d, want 5", res.Reached())
	}
}

func TestMSBFSMatchesSequentialBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	g := gen.RMAT(7, 4, gen.G500Params, rng)
	// Symmetrize for an undirected graph.
	coo := matrix.FromCSR(g)
	coo.Symmetrize()
	a := coo.ToCSR()
	sources := []int32{0, 5, 17}
	res, err := MSBFS(a, sources, &spgemm.Options{Algorithm: spgemm.AlgHash, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range sources {
		want := sequentialBFS(a, s)
		for v := 0; v < a.Rows; v++ {
			if res.Level[v][j] != want[v] {
				t.Fatalf("source %d vertex %d: level %d, want %d", s, v, res.Level[v][j], want[v])
			}
		}
	}
}

func sequentialBFS(a *matrix.CSR, src int32) []int32 {
	level := make([]int32, a.Rows)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		cols, _ := a.Row(int(v))
		for _, w := range cols {
			if level[w] < 0 {
				level[w] = level[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return level
}

func TestMSBFSBadSource(t *testing.T) {
	a := adjacency(3, [][2]int32{{0, 1}})
	if _, err := MSBFS(a, []int32{7}, nil); err == nil {
		t.Fatal("expected out-of-range source error")
	}
}

func TestMCLTwoCliques(t *testing.T) {
	// Two K4 cliques joined by a single weak edge: MCL must find exactly
	// two clusters with the cliques intact.
	var edges [][2]int32
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]int32{i, j}, [2]int32{i + 4, j + 4})
		}
	}
	edges = append(edges, [2]int32{3, 4})
	a := adjacency(8, edges)
	res, err := MCL(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2 (assignment %v)", res.NumClusters, res.Cluster)
	}
	for i := 1; i < 4; i++ {
		if res.Cluster[i] != res.Cluster[0] {
			t.Fatalf("clique 1 split: %v", res.Cluster)
		}
		if res.Cluster[i+4] != res.Cluster[4] {
			t.Fatalf("clique 2 split: %v", res.Cluster)
		}
	}
	if res.Cluster[0] == res.Cluster[4] {
		t.Fatalf("cliques merged: %v", res.Cluster)
	}
}

func TestMCLDisconnectedComponents(t *testing.T) {
	a := adjacency(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	res, err := MCL(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters < 2 {
		t.Fatalf("clusters = %d, want >= 2", res.NumClusters)
	}
	if res.Cluster[0] == res.Cluster[3] {
		t.Fatal("disconnected vertices clustered together")
	}
	if res.Iterations < 1 {
		t.Fatal("no iterations ran")
	}
}

func TestMCLRejectsNonSquare(t *testing.T) {
	if _, err := MCL(matrix.NewCSR(2, 3), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestMCLOptionDefaults(t *testing.T) {
	var o *MCLOptions
	d := o.defaults()
	if d.Inflation != 2 || d.MaxIters != 100 {
		t.Fatalf("defaults = %+v", d)
	}
	d2 := (&MCLOptions{Inflation: 1.5}).defaults()
	if d2.Inflation != 1.5 || d2.Prune != 1e-4 {
		t.Fatalf("partial defaults = %+v", d2)
	}
}

func TestPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	m := matrix.Random(5, 5, 0.5, rng)
	p := Pattern(m)
	if p.NNZ() != m.NNZ() {
		t.Fatal("pattern changed structure")
	}
	for _, v := range p.Val {
		if v != 1 {
			t.Fatal("pattern value != 1")
		}
	}
}
